"""Hierarchical (corridor-pruned) route synthesis.

Section 6 of the paper: route synthesis at internet scale needs
"heuristics for pruning precomputations and for focusing on-demand
computations".  This module implements the natural pruning heuristic for
a Figure-1 internet:

1. partition ADs into *regions* (each regional transit AD plus its
   customer subtree; all backbones form the core region);
2. route at region granularity first — a handful of candidate region
   sequences over the small super-graph;
3. run the exact constrained search *inside the corridor* of those
   regions only, which shrinks the state space by roughly the square of
   the partition factor;
4. optionally fall back to the full-topology search when every corridor
   fails (keeping the synthesiser complete at a bounded extra cost).

Ablation A5 measures the saved work, the corridor hit rate, and the
availability lost when the fallback is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.adgraph.ad import ADId, Level, LinkKind
from repro.adgraph.graph import InterADGraph
from repro.core.routes import Route
from repro.core.synthesis import SynthesisStats, synthesize_route
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.selection import OPEN_SELECTION, RouteSelectionPolicy

#: Region id of the backbone core.
CORE_REGION = 0


def partition_by_region(graph: InterADGraph) -> Dict[ADId, int]:
    """Assign every AD to a region.

    Backbones form region 0; every regional AD founds a region containing
    its hierarchical customer subtree (multi-claimed ADs go to the
    lowest-numbered region); anything left over (exotic hand-built
    topologies) joins the core.
    """
    region: Dict[ADId, int] = {}
    for ad in graph.ads_by_level(Level.BACKBONE):
        region[ad.ad_id] = CORE_REGION
    next_region = 1
    for regional in graph.ads_by_level(Level.REGIONAL):
        rid = next_region
        next_region += 1
        frontier = [regional.ad_id]
        while frontier:
            node = frontier.pop()
            if node in region:
                continue
            region[node] = rid
            for link in graph.links_of(node, include_down=True):
                if link.kind is not LinkKind.HIERARCHICAL:
                    continue
                nbr = link.other(node)
                if graph.ad(nbr).level > graph.ad(node).level and nbr not in region:
                    frontier.append(nbr)
    for ad_id in graph.ad_ids():
        region.setdefault(ad_id, CORE_REGION)
    return region


def build_super_graph(
    graph: InterADGraph, region: Dict[ADId, int]
) -> nx.Graph:
    """Region-level graph: an edge where any live inter-AD link crosses."""
    sg = nx.Graph()
    sg.add_nodes_from(sorted(set(region.values())))
    for link in graph.links(include_down=False):
        ra, rb = region[link.a], region[link.b]
        if ra == rb:
            continue
        weight = link.metric("delay")
        if not sg.has_edge(ra, rb) or weight < sg[ra][rb]["weight"]:
            sg.add_edge(ra, rb, weight=weight)
    return sg


@dataclass
class HierarchicalStats:
    """Work accounting for hierarchical synthesis (ablation A5)."""

    requests: int = 0
    corridor_hits: int = 0
    corridor_misses: int = 0
    fallbacks: int = 0
    synthesis: SynthesisStats = field(default_factory=SynthesisStats)

    @property
    def hit_ratio(self) -> float:
        return self.corridor_hits / self.requests if self.requests else 0.0


class HierarchicalSynthesizer:
    """Corridor-pruned policy route synthesis over a region partition."""

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        region: Optional[Dict[ADId, int]] = None,
        max_region_paths: int = 3,
        fallback: bool = True,
    ) -> None:
        if max_region_paths < 1:
            raise ValueError("max_region_paths must be positive")
        self.graph = graph
        self.policies = policies
        self.region = region or partition_by_region(graph)
        self.super_graph = build_super_graph(graph, self.region)
        self.max_region_paths = max_region_paths
        self.fallback = fallback
        self.stats = HierarchicalStats()
        self._members: Dict[int, FrozenSet[ADId]] = {}
        for ad_id, rid in self.region.items():
            self._members.setdefault(rid, frozenset())
        grouped: Dict[int, set] = {}
        for ad_id, rid in self.region.items():
            grouped.setdefault(rid, set()).add(ad_id)
        self._members = {rid: frozenset(m) for rid, m in grouped.items()}

    def members(self, region_id: int) -> FrozenSet[ADId]:
        """ADs of one region."""
        return self._members.get(region_id, frozenset())

    def _region_paths(self, src_region: int, dst_region: int) -> List[Tuple[int, ...]]:
        """Candidate region sequences: k cheapest, plus the via-core path.

        The k cheapest sequences tend to favour lateral shortcuts, which
        restrictive policies often refuse; the hierarchy's natural
        default -- up to the backbone core and back down -- is therefore
        always offered as a candidate too.
        """
        if src_region == dst_region:
            candidates = [(src_region,)]
            if self.super_graph.has_edge(src_region, CORE_REGION):
                # Allow hairpinning through the core (a route may need to
                # leave the region and re-enter when intra-region policy
                # blocks the direct path).
                candidates.append((src_region, CORE_REGION))
            return candidates
        candidates: List[Tuple[int, ...]] = []
        try:
            paths = nx.shortest_simple_paths(
                self.super_graph, src_region, dst_region, weight="weight"
            )
            candidates = [tuple(p) for p in islice(paths, self.max_region_paths)]
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []
        core = None
        if (
            CORE_REGION not in (src_region, dst_region)
            and self.super_graph.has_edge(src_region, CORE_REGION)
            and self.super_graph.has_edge(CORE_REGION, dst_region)
        ):
            core = (src_region, CORE_REGION, dst_region)
            if core not in candidates:
                candidates.append(core)
        # Final, widest corridor: the union of everything above.
        union = tuple(sorted({rid for path in candidates for rid in path}))
        if len(candidates) > 1 and union not in candidates:
            candidates.append(union)
        return candidates

    def _corridor_selection(
        self, corridor: FrozenSet[ADId], selection: RouteSelectionPolicy
    ) -> Optional[RouteSelectionPolicy]:
        """Merge the corridor restriction into the caller's criteria."""
        outside = frozenset(self.graph.ad_ids()) - corridor
        avoid = selection.avoid_ads | outside
        if selection.require_ads & outside:
            return None  # a required AD lies outside this corridor
        return RouteSelectionPolicy(
            avoid_ads=avoid,
            require_ads=selection.require_ads,
            max_hops=selection.max_hops,
            charge_weight=selection.charge_weight,
        )

    def route(
        self,
        flow: FlowSpec,
        selection: RouteSelectionPolicy = OPEN_SELECTION,
    ) -> Optional[Route]:
        """Synthesise a route through region corridors, cheapest first."""
        self.stats.requests += 1
        src_region = self.region.get(flow.src)
        dst_region = self.region.get(flow.dst)
        if src_region is None or dst_region is None:
            return None
        for region_path in self._region_paths(src_region, dst_region):
            corridor = frozenset().union(
                *(self.members(rid) for rid in region_path)
            )
            merged = self._corridor_selection(corridor, selection)
            if merged is None:
                continue
            route = synthesize_route(
                self.graph, self.policies, flow, merged, stats=self.stats.synthesis
            )
            if route is not None:
                self.stats.corridor_hits += 1
                return route
        self.stats.corridor_misses += 1
        if not self.fallback:
            return None
        self.stats.fallbacks += 1
        return synthesize_route(
            self.graph, self.policies, flow, selection, stats=self.stats.synthesis
        )
