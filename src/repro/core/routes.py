"""The policy route value type.

A :class:`Route` is what the paper calls a Policy Route: an ordered
sequence of ADs from source to destination (Section 4.1's level of
abstraction), together with the flow it was computed for, its cost under
the flow's QOS metric, and the total advertised charges of the transit
terms it relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.adgraph.ad import ADId
from repro.policy.flows import FlowSpec
from repro.simul.messages import AD_ID_BYTES


@dataclass(frozen=True)
class Route:
    """An AD-level policy route.

    Attributes:
        path: The AD sequence, ``path[0] == flow.src``,
            ``path[-1] == flow.dst``.
        flow: The flow spec the route was synthesised for.
        cost: Total link metric under ``flow.qos``.
        charges: Sum of advertised charges of the PTs the route uses.
    """

    path: Tuple[ADId, ...]
    flow: FlowSpec
    cost: float
    charges: float = 0.0

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("route path must be non-empty")
        if self.path[0] != self.flow.src or self.path[-1] != self.flow.dst:
            raise ValueError(
                f"path endpoints {self.path[0]}..{self.path[-1]} do not match "
                f"flow {self.flow.src}->{self.flow.dst}"
            )

    @property
    def hops(self) -> int:
        """Number of inter-AD hops."""
        return len(self.path) - 1

    @property
    def transit_ads(self) -> Tuple[ADId, ...]:
        """The intermediate ADs (those that need transit permission)."""
        return self.path[1:-1]

    def next_hop_after(self, ad_id: ADId) -> ADId:
        """The AD following ``ad_id`` on the route (source-route lookup)."""
        idx = self.path.index(ad_id)
        if idx == len(self.path) - 1:
            raise ValueError(f"AD {ad_id} is the route's destination")
        return self.path[idx + 1]

    def header_bytes(self) -> int:
        """Modelled size of this route carried in a packet header."""
        return AD_ID_BYTES * len(self.path)

    @property
    def is_loop_free(self) -> bool:
        return len(set(self.path)) == len(self.path)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "->".join(str(a) for a in self.path)
