"""Route synthesis strategies: precomputed, on-demand, hybrid.

Section 6 (research issue 1) and Section 5.4.1 frame the route-synthesis
trade-off: "Precomputation of all policy routes in a large internet is
computationally intractable, while on demand computation may introduce
excessive latency at setup time.  Consequently, a combination of
precomputation and on-demand computation should be used."

Each strategy wraps a :class:`~repro.core.synthesis.RouteSynthesizer` and
answers route requests, accounting for:

* precomputation work (states expanded up front) and table memory;
* per-request latency proxy (states expanded at request time; 0 on a
  table/cache hit);
* hit ratio.

Experiment E10 sweeps these against each other under a Zipf request
popularity distribution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.routes import Route
from repro.core.synthesis import RouteSynthesizer
from repro.policy.flows import FlowSpec
from repro.policy.selection import OPEN_SELECTION, RouteSelectionPolicy

_Key = Tuple[FlowSpec, RouteSelectionPolicy]


@dataclass
class StrategyStats:
    """Cost/benefit accounting for one synthesis strategy."""

    precompute_states: int = 0
    precomputed_routes: int = 0
    requests: int = 0
    hits: int = 0
    request_states: int = 0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def mean_request_states(self) -> float:
        """Mean per-request latency proxy (states expanded per request)."""
        return self.request_states / self.requests if self.requests else 0.0


class _BaseStrategy:
    """Shared bookkeeping: wraps a synthesizer, tracks stats and memory."""

    def __init__(self, synthesizer: RouteSynthesizer) -> None:
        self.synthesizer = synthesizer
        self.stats = StrategyStats()

    def _compute(
        self, flow: FlowSpec, selection: RouteSelectionPolicy
    ) -> Tuple[Optional[Route], int]:
        """Run synthesis, returning the route and the states it expanded."""
        before = self.synthesizer.stats.states_expanded
        route = self.synthesizer.route(flow, selection)
        return route, self.synthesizer.stats.states_expanded - before

    @property
    def table_size(self) -> int:  # pragma: no cover - overridden
        """Number of routes held in memory."""
        raise NotImplementedError

    def lookup(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Route]:  # pragma: no cover - overridden
        raise NotImplementedError


class PrecomputeStrategy(_BaseStrategy):
    """Compute every route of a given universe up front.

    Requests inside the universe are free; requests outside return
    ``None`` (the precomputed table simply has no answer).  The up-front
    cost and table memory are what make this intractable at internet
    scale -- E10's first column.
    """

    def __init__(
        self,
        synthesizer: RouteSynthesizer,
        universe: Iterable[FlowSpec],
        selection: RouteSelectionPolicy = OPEN_SELECTION,
    ) -> None:
        super().__init__(synthesizer)
        self._table: Dict[_Key, Optional[Route]] = {}
        for flow in universe:
            route, states = self._compute(flow, selection)
            self.stats.precompute_states += states
            self._table[(flow, selection)] = route
            if route is not None:
                self.stats.precomputed_routes += 1

    @property
    def table_size(self) -> int:
        return len(self._table)

    def lookup(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Route]:
        self.stats.requests += 1
        key = (flow, selection)
        if key in self._table:
            self.stats.hits += 1
            return self._table[key]
        return None


class OnDemandStrategy(_BaseStrategy):
    """Compute at request time, with a bounded LRU result cache."""

    def __init__(self, synthesizer: RouteSynthesizer, cache_size: int = 1024) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        super().__init__(synthesizer)
        self.cache_size = cache_size
        self._cache: "OrderedDict[_Key, Optional[Route]]" = OrderedDict()

    @property
    def table_size(self) -> int:
        return len(self._cache)

    def lookup(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Route]:
        self.stats.requests += 1
        key = (flow, selection)
        if key in self._cache:
            self.stats.hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        route, states = self._compute(flow, selection)
        self.stats.request_states += states
        if self.cache_size:
            self._cache[key] = route
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return route


class HybridStrategy(_BaseStrategy):
    """Precompute the popular routes, fall back to on-demand for the rest.

    ``popular`` is the pruned precomputation set -- the paper's
    "heuristics to prune the search and limit it to commonly used routes".
    """

    def __init__(
        self,
        synthesizer: RouteSynthesizer,
        popular: Iterable[FlowSpec],
        cache_size: int = 1024,
        selection: RouteSelectionPolicy = OPEN_SELECTION,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        super().__init__(synthesizer)
        self.cache_size = cache_size
        self._cache: "OrderedDict[_Key, Optional[Route]]" = OrderedDict()
        self._precomputed: Dict[_Key, Optional[Route]] = {}
        for flow in popular:
            route, states = self._compute(flow, selection)
            self.stats.precompute_states += states
            self._precomputed[(flow, selection)] = route
            if route is not None:
                self.stats.precomputed_routes += 1

    @property
    def table_size(self) -> int:
        return len(self._precomputed) + len(self._cache)

    def lookup(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Route]:
        self.stats.requests += 1
        key = (flow, selection)
        if key in self._precomputed:
            self.stats.hits += 1
            return self._precomputed[key]
        if key in self._cache:
            self.stats.hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        route, states = self._compute(flow, selection)
        self.stats.request_states += states
        if self.cache_size:
            self._cache[key] = route
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return route
