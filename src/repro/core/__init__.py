"""The paper's primary contribution, made executable.

* :mod:`~repro.core.design_space` — Table 1: the eight-point design space
  (algorithm x decision location x policy expression) and the registry
  mapping each point to a protocol implementation.
* :mod:`~repro.core.routes` — the policy route value type.
* :mod:`~repro.core.synthesis` — policy route synthesis: constrained
  search over the (AD, previous-hop) state graph, with exact fallback.
* :mod:`~repro.core.strategies` — precomputed / on-demand / hybrid
  synthesis strategies (Section 6, research issue 1).
* :mod:`~repro.core.evaluation` — ground-truth legality and route
  availability metrics.
* :mod:`~repro.core.scorecard` — the measured Table 1.
"""

from repro.core.design_space import (
    Algorithm,
    DecisionLocation,
    DesignPoint,
    PolicyExpression,
    enumerate_design_space,
)
from repro.core.evaluation import (
    AvailabilityReport,
    evaluate_availability,
    legal_route_exists,
    sample_flows,
)
from repro.core.hierarchical import (
    HierarchicalStats,
    HierarchicalSynthesizer,
    partition_by_region,
)
from repro.core.routes import Route
from repro.core.strategies import (
    HybridStrategy,
    OnDemandStrategy,
    PrecomputeStrategy,
    StrategyStats,
)
from repro.core.synthesis import RouteSynthesizer, SynthesisStats, synthesize_route

__all__ = [
    "Algorithm",
    "AvailabilityReport",
    "DecisionLocation",
    "DesignPoint",
    "HierarchicalStats",
    "HierarchicalSynthesizer",
    "HybridStrategy",
    "OnDemandStrategy",
    "PolicyExpression",
    "PrecomputeStrategy",
    "Route",
    "RouteSynthesizer",
    "StrategyStats",
    "SynthesisStats",
    "enumerate_design_space",
    "evaluate_availability",
    "legal_route_exists",
    "partition_by_region",
    "sample_flows",
    "synthesize_route",
]
