"""Table 1: the eight-point design space for inter-AD routing.

The paper organises all inter-AD routing proposals along three binary
axes (Section 4):

* **Algorithm** — distance vector vs. link state (Section 4.3);
* **Decision location** — hop-by-hop vs. source routing (Section 4.4);
* **Policy expression** — embedded in the topology vs. explicit Policy
  Terms in routing exchanges (Section 4.2).

Section 5 walks four of the eight points in a specific order (each step
changes one axis) and dismisses the remaining four with brief arguments
(Section 5.5).  :func:`enumerate_design_space` reproduces that ordering;
:data:`PAPER_VERDICTS` records the paper's judgement per point, which the
measured scorecard (E1) is compared against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class Algorithm(enum.Enum):
    """Routing information algorithm (Section 4.3)."""

    DISTANCE_VECTOR = "distance-vector"
    LINK_STATE = "link-state"

    @property
    def short(self) -> str:
        return "DV" if self is Algorithm.DISTANCE_VECTOR else "LS"


class DecisionLocation(enum.Enum):
    """Where the routing decision is made (Section 4.4)."""

    HOP_BY_HOP = "hop-by-hop"
    SOURCE = "source"

    @property
    def short(self) -> str:
        return "HbH" if self is DecisionLocation.HOP_BY_HOP else "Src"


class PolicyExpression(enum.Enum):
    """How policy enters the routing architecture (Section 4.2)."""

    TOPOLOGY = "topology"
    TERMS = "policy-terms"

    @property
    def short(self) -> str:
        return "Topo" if self is PolicyExpression.TOPOLOGY else "PT"


@dataclass(frozen=True)
class DesignPoint:
    """One cell of Table 1."""

    algorithm: Algorithm
    location: DecisionLocation
    expression: PolicyExpression

    @property
    def label(self) -> str:
        """Compact label, e.g. ``"DV/HbH/Topo"``."""
        return f"{self.algorithm.short}/{self.location.short}/{self.expression.short}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


# The four points Section 5 discusses in depth, in its walk order.
DV_HBH_TOPOLOGY = DesignPoint(
    Algorithm.DISTANCE_VECTOR, DecisionLocation.HOP_BY_HOP, PolicyExpression.TOPOLOGY
)
DV_HBH_TERMS = DesignPoint(
    Algorithm.DISTANCE_VECTOR, DecisionLocation.HOP_BY_HOP, PolicyExpression.TERMS
)
LS_HBH_TERMS = DesignPoint(
    Algorithm.LINK_STATE, DecisionLocation.HOP_BY_HOP, PolicyExpression.TERMS
)
LS_SRC_TERMS = DesignPoint(
    Algorithm.LINK_STATE, DecisionLocation.SOURCE, PolicyExpression.TERMS
)
# The four points Section 5.5 dismisses.
LS_HBH_TOPOLOGY = DesignPoint(
    Algorithm.LINK_STATE, DecisionLocation.HOP_BY_HOP, PolicyExpression.TOPOLOGY
)
LS_SRC_TOPOLOGY = DesignPoint(
    Algorithm.LINK_STATE, DecisionLocation.SOURCE, PolicyExpression.TOPOLOGY
)
DV_SRC_TOPOLOGY = DesignPoint(
    Algorithm.DISTANCE_VECTOR, DecisionLocation.SOURCE, PolicyExpression.TOPOLOGY
)
DV_SRC_TERMS = DesignPoint(
    Algorithm.DISTANCE_VECTOR, DecisionLocation.SOURCE, PolicyExpression.TERMS
)


def enumerate_design_space() -> List[DesignPoint]:
    """All eight points, Section 5's four first (in its walk order)."""
    return [
        DV_HBH_TOPOLOGY,
        DV_HBH_TERMS,
        LS_HBH_TERMS,
        LS_SRC_TERMS,
        LS_HBH_TOPOLOGY,
        LS_SRC_TOPOLOGY,
        DV_SRC_TOPOLOGY,
        DV_SRC_TERMS,
    ]


@dataclass(frozen=True)
class PaperVerdict:
    """The paper's qualitative judgement of a design point."""

    section: str
    proposal: Optional[str]
    summary: str
    recommended: bool = False
    dismissed: bool = False


PAPER_VERDICTS: Dict[DesignPoint, PaperVerdict] = {
    DV_HBH_TOPOLOGY: PaperVerdict(
        section="5.1",
        proposal="ECMA (NIST); BGP v1",
        summary=(
            "Partial ordering prevents loops and count-to-infinity, but "
            "expressible policies are limited, a central authority must "
            "maintain the ordering, and sources are constrained by "
            "downstream choices"
        ),
    ),
    DV_HBH_TERMS: PaperVerdict(
        section="5.2",
        proposal="IDRP; BGP v2",
        summary=(
            "Full AD-path suppresses loops and PTs widen expressible "
            "policy, but one advertised route per destination/class "
            "starves sources, and fine-grained policy replicates tables"
        ),
    ),
    LS_HBH_TERMS: PaperVerdict(
        section="5.3",
        proposal="(suggested in Perlman 1981)",
        summary=(
            "Sources can discover any valid route, but every transit AD "
            "must replicate the per-source computation and all must agree "
            "to avoid loops"
        ),
    ),
    LS_SRC_TERMS: PaperVerdict(
        section="5.4",
        proposal="ORWG / Clark policy routing (IDPR)",
        summary=(
            "Source controls the whole route, loop freedom by inspection, "
            "multiple routes per destination without table replication; "
            "route synthesis cost is the open challenge"
        ),
        recommended=True,
    ),
    LS_HBH_TOPOLOGY: PaperVerdict(
        section="5.5.1",
        proposal=None,
        summary=(
            "Flooding plus topology-constrained policy offers no advantage "
            "over the schemes above"
        ),
        dismissed=True,
    ),
    LS_SRC_TOPOLOGY: PaperVerdict(
        section="5.5.1",
        proposal=None,
        summary=(
            "Flooding plus topology-constrained policy offers no advantage "
            "over the schemes above"
        ),
        dismissed=True,
    ),
    DV_SRC_TOPOLOGY: PaperVerdict(
        section="5.5.2",
        proposal=None,
        summary=(
            "Source routing without link state cannot give the source "
            "control of the route computation itself"
        ),
        dismissed=True,
    ),
    DV_SRC_TERMS: PaperVerdict(
        section="5.5.2",
        proposal="(imaginable BGP-with-source-routes)",
        summary=(
            "AD-path information could seed source routes, but without "
            "complete link-state information source control is partial"
        ),
        dismissed=True,
    ),
}


def verdict_for(point: DesignPoint) -> PaperVerdict:
    """The paper's judgement for a design point."""
    return PAPER_VERDICTS[point]
