"""Misbehaving-AD injection: turn one AD into a liar on a schedule.

Benign faults (:mod:`repro.faults.plan`) stress the substrate; this
module injects the adversarial half of the paper's robustness story --
the route leaks and bogus advertisements that motivated policy-aware
interdomain designs in the first place.  A :class:`MisbehaviorPlan` is a
time-ordered sequence of :class:`MisbehaviorStart`/:class:`MisbehaviorStop`
events with the same shape as :class:`~repro.faults.plan.FaultPlan`
(relative times, ``__iter__``/``__len__``/``horizon``), so the existing
``schedule_fault_plan`` path in the protocol driver schedules it
unchanged.

The lie vocabulary (:data:`LIES`) spans the protocol families:

* ``route-leak``   -- offer transit beyond the AD's configured policy.
  For path-vector protocols this is re-advertising learned routes past
  the export scope; for the LS+PT designs it is flooding a forged
  ultra-permissive policy term of one's own (advertising transit the
  registry never authorized) -- the same violation expressed in each
  protocol's native currency.
* ``bogus-origin`` -- claim a stub the liar does not own (a fabricated
  adjacency/origination that attracts the victim's traffic).
* ``stale-replay`` -- re-flood obsolete state under inflated sequence
  numbers so fresh honest updates are rejected as old.
* ``metric-lie``   -- advertise impossibly low costs to attract transit.
* ``term-forgery`` -- flood policy terms owned by *another* AD
  (PT-carrying protocols only).

Not every lie is expressible in every family (DV has no terms to forge);
``ProtocolNode.misbehave`` returns whether the lie applied, and the
driver records the outcome instead of failing the run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.adgraph.ad import ADId, Level
from repro.adgraph.graph import InterADGraph

#: The lie vocabulary, in canonical order.
LIES: Tuple[str, ...] = (
    "route-leak",
    "bogus-origin",
    "stale-replay",
    "metric-lie",
    "term-forgery",
)

#: Liar-role names accepted by :func:`liar_by_role`.
ROLES: Tuple[str, ...] = ("stub", "regional", "backbone")


@dataclass(frozen=True)
class MisbehaviorStart:
    """AD ``ad`` begins telling lie ``lie``, ``time`` after scheduling.

    ``target`` is the victim AD for lies that need one (bogus-origin
    claims this stub); ``None`` lets the liar pick a deterministic
    victim from its own vantage point.
    """

    time: float
    ad: ADId
    lie: str
    target: Optional[ADId] = None


@dataclass(frozen=True)
class MisbehaviorStop:
    """AD ``ad`` reverts to honest behaviour (stops originating lies).

    Already-flooded lies are *not* withdrawn -- containment of the
    residue is exactly what the validation layer is measured on.
    """

    time: float
    ad: ADId


MisbehaviorEvent = Union[MisbehaviorStart, MisbehaviorStop]


@dataclass(frozen=True)
class MisbehaviorPlan:
    """A time-ordered sequence of misbehavior events."""

    events: Tuple[MisbehaviorEvent, ...]

    def __post_init__(self) -> None:
        times = [e.time for e in self.events]
        if times != sorted(times):
            raise ValueError("misbehavior events must be time-ordered")
        for ev in self.events:
            if isinstance(ev, MisbehaviorStart) and ev.lie not in LIES:
                raise ValueError(
                    f"unknown lie {ev.lie!r}; choose from {LIES}"
                )

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last event (0 for an empty plan)."""
        return self.events[-1].time if self.events else 0.0


def liar_by_role(graph: InterADGraph, role: str, seed: int = 0) -> ADId:
    """Pick the liar for a role, deterministically.

    Candidates are ordered by descending live degree (a well-connected
    liar is the interesting adversary), ties broken by AD id; ``seed``
    rotates through that order so seed sweeps vary the liar without
    losing determinism.  Raises loudly when the topology has no AD of
    the requested role rather than silently substituting one.
    """
    if role == "backbone":
        candidates = graph.ads_by_level(Level.BACKBONE)
    elif role == "regional":
        candidates = graph.ads_by_level(Level.REGIONAL)
    elif role == "stub":
        candidates = graph.stub_ads()
    else:
        raise ValueError(f"unknown liar role {role!r}; choose from {ROLES}")
    if not candidates:
        raise ValueError(f"topology has no {role} AD to turn into a liar")
    ordered = sorted(
        candidates, key=lambda ad: (-graph.degree(ad.ad_id), ad.ad_id)
    )
    return ordered[seed % len(ordered)].ad_id


def pick_victim_stub(
    graph: InterADGraph, liar: ADId, seed: int = 0
) -> ADId:
    """A stub the liar does *not* own and is not adjacent to.

    Non-adjacency matters: a bogus-origin claim about a directly
    attached stub would be indistinguishable from legitimate
    origination, so it would neither mislead nor be detectable.
    """
    rng = random.Random(seed)
    stubs = [
        ad.ad_id
        for ad in graph.stub_ads()
        if ad.ad_id != liar and not graph.has_link(liar, ad.ad_id)
    ]
    if not stubs:
        raise ValueError(f"no non-adjacent stub victim for liar AD {liar}")
    return stubs[rng.randrange(len(stubs))]


def misbehavior_plan(
    graph: InterADGraph,
    lie: str,
    liar: Optional[ADId] = None,
    role: str = "backbone",
    start_time: float = 150.0,
    duration: float = 0.0,
    seed: int = 0,
) -> MisbehaviorPlan:
    """Build a one-liar plan: start at ``start_time``, optionally stop.

    ``liar`` overrides the role-based pick; ``duration=0`` means the AD
    lies until the end of the run (the steady-state regime E12
    measures).  Victim selection for ``bogus-origin`` is seeded here so
    the plan is self-contained and picklable.
    """
    if lie not in LIES:
        raise ValueError(f"unknown lie {lie!r}; choose from {LIES}")
    if liar is None:
        liar = liar_by_role(graph, role, seed=seed)
    elif not graph.has_ad(liar):
        raise ValueError(f"liar AD {liar} is not in the topology")
    target: Optional[ADId] = None
    if lie == "bogus-origin":
        target = pick_victim_stub(graph, liar, seed=seed)
    events: List[MisbehaviorEvent] = [
        MisbehaviorStart(start_time, liar, lie, target)
    ]
    if duration > 0:
        events.append(MisbehaviorStop(start_time + duration, liar))
    return MisbehaviorPlan(tuple(events))
