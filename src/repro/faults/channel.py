"""Per-link channel impairment models.

A channel model decides, for each control-message transmission, how many
copies arrive and how late: zero copies is a loss, two is a duplication,
and a positive extra delay reorders the copy relative to later traffic
on the same link (the engine delivers strictly in (time, seq) order, so
jitter is all it takes to reorder).

The default is no channel at all: :class:`~repro.simul.network.SimNetwork`
keeps its original single-copy, zero-jitter delivery path when
``network.channel is None``, so every pre-existing benchmark stays
byte-identical.

Determinism contract: an :class:`ImpairedChannel` owns one
``random.Random`` per link, created lazily and seeded from the channel
seed and the canonical link key with explicit integer mixing -- never
``hash()``, whose value changes per process under ``PYTHONHASHSEED``
randomization.  Replaying the same scenario with the same seed therefore
replays the exact same drop/duplicate/jitter decisions message for
message, regardless of process, platform, or worker scheduling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.adgraph.ad import ADId

#: Odd multipliers folding (seed, link key) into one RNG seed.  Plain
#: integer arithmetic keeps the mix stable across processes (unlike
#: ``hash()``) while separating the streams of adjacent links.
_SEED_MIX = 1_000_003
_KEY_MIX = 7_919


@dataclass(frozen=True)
class Impairment:
    """One link's impairment parameters (all probabilities per message).

    Attributes:
        drop_prob: Independent loss probability per transmission.
        dup_prob: Probability a delivered message arrives twice.
        jitter: Extra delivery delay drawn uniformly from ``[0, jitter]``;
            enough to reorder messages whose spacing is below it.
        burst_enter: Gilbert-Elliott transition probability into the
            burst-outage state (checked once per transmission); while in
            the burst state every message is lost.
        burst_exit: Transition probability out of the burst state.
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    jitter: float = 0.0
    burst_enter: float = 0.0
    burst_exit: float = 0.5

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "burst_enter", "burst_exit"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")

    @property
    def perfect(self) -> bool:
        """Whether this spec never alters delivery (no RNG is consumed)."""
        return (
            self.drop_prob == 0.0
            and self.dup_prob == 0.0
            and self.jitter == 0.0
            and self.burst_enter == 0.0
        )


#: The no-op impairment: deliver one copy, on time, always.
PERFECT = Impairment()


def link_key(a: ADId, b: ADId) -> Tuple[ADId, ADId]:
    """Canonical (sorted) link key, shared with the topology layer."""
    return (a, b) if a <= b else (b, a)


class ChannelModel:
    """Base channel: perfect delivery.

    :meth:`transmit` returns the extra delay of every copy that arrives;
    an empty tuple is a loss, two entries a duplication.  The base model
    is stateless and always answers ``(0.0,)``.
    """

    def transmit(self, src: ADId, dst: ADId) -> Tuple[float, ...]:
        """Decide the fate of one transmission from ``src`` to ``dst``."""
        return (0.0,)

    def set_impairment(
        self, link: Optional[Tuple[ADId, ADId]], spec: Impairment
    ) -> None:
        """Change impairment parameters mid-run (scheduled fault plans)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support impairment changes"
        )

    def counters(self) -> Dict[str, int]:
        """Accumulated impairment counts (empty for the perfect channel)."""
        return {}


class ImpairedChannel(ChannelModel):
    """Seed-deterministic lossy channel with per-link RNG streams.

    ``default`` applies to every link without an override;
    :meth:`set_impairment` installs per-link overrides (or replaces the
    default) at any time, which is how scheduled ``lossy period`` fault
    events work.
    """

    def __init__(self, default: Impairment = PERFECT, seed: int = 0) -> None:
        self.default = default
        self.seed = seed
        self._overrides: Dict[Tuple[ADId, ADId], Impairment] = {}
        self._rngs: Dict[Tuple[ADId, ADId], random.Random] = {}
        self._burst: Dict[Tuple[ADId, ADId], bool] = {}
        self.transmissions = 0
        self.dropped = 0
        self.burst_dropped = 0
        self.duplicated = 0

    def _rng(self, key: Tuple[ADId, ADId]) -> random.Random:
        rng = self._rngs.get(key)
        if rng is None:
            mixed = (self.seed * _SEED_MIX) ^ (int(key[0]) * _KEY_MIX + int(key[1]))
            rng = random.Random(mixed)
            self._rngs[key] = rng
        return rng

    def impairment_for(self, key: Tuple[ADId, ADId]) -> Impairment:
        return self._overrides.get(key, self.default)

    def set_impairment(
        self, link: Optional[Tuple[ADId, ADId]], spec: Impairment
    ) -> None:
        """Override one link's impairment, or (``link=None``) the default."""
        if link is None:
            self.default = spec
        else:
            self._overrides[link_key(*link)] = spec

    def transmit(self, src: ADId, dst: ADId) -> Tuple[float, ...]:
        self.transmissions += 1
        key = link_key(src, dst)
        spec = self.impairment_for(key)
        if spec.perfect:
            return (0.0,)
        rng = self._rng(key)
        if spec.burst_enter > 0.0:
            in_burst = self._burst.get(key, False)
            if rng.random() < (spec.burst_exit if in_burst else spec.burst_enter):
                in_burst = not in_burst
            self._burst[key] = in_burst
            if in_burst:
                self.burst_dropped += 1
                self.dropped += 1
                return ()
        if spec.drop_prob > 0.0 and rng.random() < spec.drop_prob:
            self.dropped += 1
            return ()
        delays = [rng.uniform(0.0, spec.jitter) if spec.jitter > 0.0 else 0.0]
        if spec.dup_prob > 0.0 and rng.random() < spec.dup_prob:
            self.duplicated += 1
            delays.append(
                rng.uniform(0.0, spec.jitter) if spec.jitter > 0.0 else 0.0
            )
        return tuple(delays)

    def counters(self) -> Dict[str, int]:
        return {
            "transmissions": self.transmissions,
            "dropped": self.dropped,
            "burst_dropped": self.burst_dropped,
            "duplicated": self.duplicated,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ImpairedChannel(seed={self.seed}, default={self.default}, "
            f"overrides={len(self._overrides)})"
        )
