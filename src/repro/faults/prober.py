"""RoutePulse: a data-plane reachability sampler.

Convergence metrics say when the control plane went quiet; they say
nothing about what traffic experienced *while* it was noisy.  RoutePulse
interleaves simulation slices with data-plane probes: every ``interval``
time units it asks the protocol, for each probe flow, "what route would
a packet take right now?" and classifies the answer:

* ``ok`` -- a route exists and every hop is real (live ground-truth
  links, no crashed AD);
* ``loop`` -- the hop-by-hop walk cycled (the transient the paper's
  consistency argument is about);
* ``blackhole`` -- no route at all (or an endpoint is crashed);
* ``stale`` -- the protocol still answers with a route the physical
  internet can no longer carry (a down link or crashed transit AD),
  which is a blackhole wearing a route's clothes;
* ``hijacked`` -- the forwarded path transits a poison suspect (a liar,
  or the victim a lie impersonated) that the flow's own pre-lie
  reference route did not.  The reference is the *protocol's* converged
  answer, not synthesized ground truth: design points legitimately
  differ in which routes they find (that is Table 1), and a flow that
  always routed through the future liar is not hijacked just because
  the liar later started lying to someone else.

A flow whose *source* AD is crashed is not sampled at all: there is no
vantage point to probe from, and counting it as an outage would charge
the routing protocol for a failure it cannot observe, let alone repair.
A crashed destination stays ``blackhole`` (the network genuinely cannot
deliver, and the protocol is expected to learn that).

From the per-flow sample streams it derives outage episodes and
time-to-repair distributions; :meth:`RoutePulse.summary` flattens them
into the JSON-friendly mapping recorded into ``RunRecord.robustness``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.policy.flows import FlowSpec

#: Sample statuses, worst first (everything but "ok" counts as bad).
STATUSES = ("ok", "stale", "loop", "blackhole", "hijacked")


@dataclass(frozen=True)
class ProbeSample:
    """One flow's reachability at one sample time."""

    time: float
    flow_index: int
    status: str

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class FlowOutage:
    """A maximal run of consecutive bad samples for one flow.

    ``end`` is the time of the first good sample after the run (so
    ``end - start`` bounds the repair time at sample resolution), or
    ``None`` when the flow never recovered before probing stopped.
    """

    flow_index: int
    start: float
    end: Optional[float]
    samples: int

    @property
    def repaired(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


class RoutePulse:
    """Samples data-plane reachability while the simulation runs."""

    def __init__(
        self,
        protocol,
        flows: Sequence[FlowSpec],
        interval: float = 50.0,
        reference_routes: Optional[
            Dict[FlowSpec, Optional[Tuple[int, ...]]]
        ] = None,
        on_sample: Optional[Callable[[float], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("probe interval must be positive")
        self.protocol = protocol
        self.flows = list(flows)
        self.interval = interval
        #: Pre-lie reference for the hijack verdict: the route the
        #: protocol itself answered for each flow before misbehavior was
        #: scheduled (None value = the flow had no route then; absent /
        #: None mapping = hijack detection off).
        self.reference_routes = reference_routes
        #: Epoch hook: called with the sim time after each probe round,
        #: so other observers (e.g. the E14 FIB snapshotter) ride the
        #: same slice-and-sample loop instead of running their own.
        self.on_sample = on_sample
        self.samples: List[ProbeSample] = []
        self.events_processed = 0

    # ------------------------------------------------------------- sampling

    def _classify(self, flow: FlowSpec) -> Optional[str]:
        network = self.protocol.network
        if network.is_crashed(flow.src):
            return None  # no vantage point: not a routing outcome at all
        if network.is_crashed(flow.dst):
            return "blackhole"
        loops_before = self.protocol.forwarding_loops
        path = self.protocol.find_route(flow)
        if path is None:
            if self.protocol.forwarding_loops > loops_before:
                return "loop"
            return "blackhole"
        if self._hijacked(flow, path):
            return "hijacked"
        # The protocol has a route; check the physical internet can carry
        # it (ground truth may disagree with a stale believed topology).
        graph = self.protocol.graph
        for hop in path:
            if network.is_crashed(hop):
                return "stale"
        for a, b in zip(path, path[1:]):
            if not graph.has_link(a, b) or not graph.link(a, b).up:
                return "stale"
        return "ok"

    def _hijacked(self, flow: FlowSpec, path: Tuple[int, ...]) -> bool:
        """Does the forwarded path transit a poison suspect that the
        flow's pre-lie reference route did not?"""
        if self.reference_routes is None:
            return False
        suspect_fn = getattr(self.protocol, "poison_suspects", None)
        if suspect_fn is None:
            return False
        suspects = suspect_fn()
        if not suspects:
            return False
        reference = self.reference_routes.get(flow)
        tainted = set(reference[1:-1]) if reference else set()
        return any(h in suspects and h not in tainted for h in path[1:-1])

    def _sample_once(self) -> None:
        now = self.protocol.network.sim.now
        for i, flow in enumerate(self.flows):
            status = self._classify(flow)
            if status is not None:
                self.samples.append(ProbeSample(now, i, status))

    def run(self, until: float, max_events: int = 5_000_000) -> bool:
        """Advance the simulation to ``until``, probing every interval.

        Returns whether the engine stayed within its event budget (the
        per-episode quiescence analogue for a probed timeline).
        """
        network = self.protocol.network
        hit_limit = False
        t = network.sim.now
        while t < until:
            t = min(t + self.interval, until)
            budget = max_events - self.events_processed
            if budget <= 0:
                hit_limit = True
                break
            self.events_processed += network.run(
                until=t, max_events=budget, raise_on_limit=False
            )
            if network.sim.hit_event_limit:
                hit_limit = True
            self._sample_once()
            if self.on_sample is not None:
                self.on_sample(network.sim.now)
        return not hit_limit

    # -------------------------------------------------------------- analysis

    def outages(self) -> List[FlowOutage]:
        """Maximal bad-sample runs, per flow, in (flow, start) order."""
        by_flow: Dict[int, List[ProbeSample]] = {}
        for sample in self.samples:
            by_flow.setdefault(sample.flow_index, []).append(sample)
        out: List[FlowOutage] = []
        for flow_index in sorted(by_flow):
            start: Optional[float] = None
            count = 0
            for sample in by_flow[flow_index]:
                if sample.ok:
                    if start is not None:
                        out.append(FlowOutage(flow_index, start, sample.time, count))
                        start, count = None, 0
                else:
                    if start is None:
                        start = sample.time
                    count += 1
            if start is not None:
                out.append(FlowOutage(flow_index, start, None, count))
        return out

    def blast_series(self, start_time: float) -> List[Tuple[float, int]]:
        """Per-round count of flows a lie impacted, from ``start_time`` on.

        A flow counts as impacted in a round when it samples ``hijacked``,
        or when it samples any other bad status despite having been ``ok``
        at its last pre-``start_time`` sample (so structural outages --
        flows that never had a legal route -- do not inflate the blast
        radius).
        """
        baseline: Dict[int, str] = {}
        rounds: Dict[float, List[ProbeSample]] = {}
        for sample in self.samples:
            if sample.time < start_time:
                baseline[sample.flow_index] = sample.status
            else:
                rounds.setdefault(sample.time, []).append(sample)
        series: List[Tuple[float, int]] = []
        for time in sorted(rounds):
            blast = 0
            for sample in rounds[time]:
                if sample.status == "hijacked":
                    blast += 1
                elif not sample.ok and baseline.get(sample.flow_index, "ok") == "ok":
                    blast += 1
            series.append((time, blast))
        return series

    def summary(self) -> Dict[str, object]:
        """JSON-friendly rollup for ``RunRecord.robustness``."""
        counts = {status: 0 for status in STATUSES}
        for sample in self.samples:
            counts[sample.status] += 1
        total = len(self.samples)
        outages = self.outages()
        repaired: Tuple[float, ...] = tuple(
            o.duration for o in outages if o.duration is not None
        )
        return {
            "samples": total,
            "flows": len(self.flows),
            "probe_interval": self.interval,
            "counts": counts,
            "availability": (counts["ok"] / total) if total else 1.0,
            "outages": len(outages),
            "outages_repaired": len(repaired),
            "outages_unrepaired": len(outages) - len(repaired),
            "mean_ttr": (sum(repaired) / len(repaired)) if repaired else 0.0,
            "max_ttr": max(repaired) if repaired else 0.0,
        }
