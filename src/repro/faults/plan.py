"""The fault-plan DSL: link churn, AD crash/restart, impairment changes.

A :class:`FaultPlan` generalizes :class:`~repro.adgraph.failures.FailurePlan`
(link up/down only) with two further event kinds:

* :class:`NodeFault` -- an AD's routing process crashes (all incident
  links drop and the node goes silent) and later restarts, either
  retaining its RIB/LSDB (``retain_state=True``: a gateway whose
  interfaces bounced) or losing it (``retain_state=False``: the process
  is replaced wholesale and must relearn the internet);
* :class:`ImpairmentChange` -- the channel model's parameters for one
  link (or the default for all links) change at a scheduled time, which
  is how lossy periods and flapping-quality links are expressed.

Event times are **relative**: :meth:`RoutingProtocol.schedule_fault_plan
<repro.protocols.base.RoutingProtocol.schedule_fault_plan>` offsets them
from the moment the plan is scheduled, so a plan composed for "100 time
units after initial convergence" works no matter how long convergence
took (absolute times would race slow protocols into "cannot schedule
into the past").

Generators draw from a seeded ``random.Random`` and validate feasibility
loudly (never silently shrinking the plan): flaps come from non-bridge
links, crashes from non-articulation-point ADs, so the internet minus
the faulted element stays connected and repair is measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.adgraph.ad import ADId, LinkKind
from repro.adgraph.failures import FailurePlan, safe_failure_candidates
from repro.adgraph.graph import InterADGraph
from repro.faults.channel import PERFECT, Impairment


@dataclass(frozen=True)
class LinkFault:
    """A link status change, ``time`` units after the plan is scheduled."""

    time: float
    a: ADId
    b: ADId
    up: bool = False


@dataclass(frozen=True)
class NodeFault:
    """An AD crash (``up=False``) or restart (``up=True``).

    ``retain_state`` only matters on the restart event: ``True`` brings
    the same routing process back (tables intact, interfaces restored),
    ``False`` replaces it with a freshly-constructed node that must
    relearn everything from its neighbours.
    """

    time: float
    ad: ADId
    up: bool = False
    retain_state: bool = True


@dataclass(frozen=True)
class ImpairmentChange:
    """A scheduled change of channel impairment parameters.

    ``link=None`` replaces the channel's default (all links without an
    override); otherwise only the named link changes.
    """

    time: float
    spec: Impairment
    link: Optional[Tuple[ADId, ADId]] = None


FaultEvent = Union[LinkFault, NodeFault, ImpairmentChange]


@dataclass(frozen=True)
class FaultPlan:
    """A time-ordered sequence of fault events."""

    events: Tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        times = [e.time for e in self.events]
        if times != sorted(times):
            raise ValueError("fault events must be time-ordered")

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last event (0 for an empty plan)."""
        return self.events[-1].time if self.events else 0.0

    @classmethod
    def from_failure_plan(cls, plan: FailurePlan) -> "FaultPlan":
        """Lift a link-only :class:`FailurePlan` into the fault DSL."""
        return cls(
            tuple(LinkFault(ev.time, ev.a, ev.b, ev.up) for ev in plan)
        )


def merge_plans(*plans: FaultPlan) -> FaultPlan:
    """Merge plans into one, time-ordered (stable for equal times)."""
    events: List[FaultEvent] = []
    for plan in plans:
        events.extend(plan.events)
    events.sort(key=lambda ev: ev.time)
    return FaultPlan(tuple(events))


def link_flap_plan(
    graph: InterADGraph,
    flaps: int = 1,
    start_time: float = 100.0,
    spacing: float = 400.0,
    down_for: Optional[float] = None,
    seed: int = 0,
) -> FaultPlan:
    """Flap ``flaps`` random non-bridge links (down, then up again).

    Each flap occupies one ``spacing`` window: down at the window start,
    up ``down_for`` later (default half the spacing), so reconvergence
    after each change is observable in isolation.
    """
    rng = random.Random(seed)
    candidates = safe_failure_candidates(graph)
    if len(candidates) < flaps:
        raise ValueError(
            f"only {len(candidates)} safe candidate links, need {flaps}"
        )
    chosen = rng.sample(candidates, flaps)
    if down_for is None:
        down_for = spacing / 2.0
    events: List[FaultEvent] = []
    t = start_time
    for a, b in chosen:
        events.append(LinkFault(t, a, b, up=False))
        events.append(LinkFault(t + down_for, a, b, up=True))
        t += spacing
    return FaultPlan(tuple(events))


def churn_storm_plan(
    graph: InterADGraph,
    hz: float = 0.02,
    links: int = 3,
    start_time: float = 100.0,
    duration: float = 400.0,
    seed: int = 0,
) -> FaultPlan:
    """Sustained concurrent link flapping: the E13 churn storm.

    ``links`` links each flap at ``hz`` cycles per time unit for
    ``duration``: down at every period start, up half a period later,
    all links in phase.  Unlike :func:`link_flap_plan` the flaps overlap
    rather than occupying separate windows, so update load accumulates
    -- this is the workload that overflows bounded ingress queues and
    that flap damping is designed to quench.

    Candidates are the non-bridge links, *preferring* lateral/bypass
    links (the paper's redundancy links): flapping those stresses
    alternate-path selection everywhere without partitioning anyone.
    Hierarchical links are used only when there are not enough.
    """
    if hz <= 0:
        raise ValueError("churn frequency must be > 0")
    if duration <= 0:
        raise ValueError("churn duration must be > 0")
    rng = random.Random(seed)
    candidates = safe_failure_candidates(graph)
    if len(candidates) < links:
        raise ValueError(
            f"only {len(candidates)} safe candidate links, need {links}"
        )
    by_key = {ln.key: ln for ln in graph.links(include_down=False)}
    preferred = [
        key
        for key in candidates
        if by_key[key].kind in (LinkKind.LATERAL, LinkKind.BYPASS)
    ]
    rest = [key for key in candidates if key not in preferred]
    rng.shuffle(preferred)
    rng.shuffle(rest)
    chosen = (preferred + rest)[:links]
    period = 1.0 / hz
    events: List[FaultEvent] = []
    for a, b in chosen:
        t = start_time
        while t < start_time + duration:
            events.append(LinkFault(t, a, b, up=False))
            events.append(LinkFault(t + period / 2.0, a, b, up=True))
            t += period
    events.sort(key=lambda ev: ev.time)
    return FaultPlan(tuple(events))


def crash_candidates(graph: InterADGraph) -> List[ADId]:
    """ADs whose crash leaves the *rest* of the internet connected.

    Articulation points are excluded for the same reason bridges are
    excluded from link-failure candidates: crashing one would measure
    partition behaviour, not crash recovery.
    """
    import networkx as nx

    g = graph.nx_graph(live_only=True)
    cut = set(nx.articulation_points(g))
    return [ad_id for ad_id in graph.ad_ids() if ad_id not in cut]


def ad_crash_plan(
    graph: InterADGraph,
    crashes: int = 1,
    retain_state: bool = False,
    start_time: float = 100.0,
    spacing: float = 400.0,
    down_for: Optional[float] = None,
    seed: int = 0,
) -> FaultPlan:
    """Crash-and-restart ``crashes`` random non-articulation-point ADs."""
    rng = random.Random(seed)
    candidates = crash_candidates(graph)
    if len(candidates) < crashes:
        raise ValueError(
            f"only {len(candidates)} crash-safe ADs, need {crashes}"
        )
    chosen = rng.sample(candidates, crashes)
    if down_for is None:
        down_for = spacing / 2.0
    events: List[FaultEvent] = []
    t = start_time
    for ad_id in chosen:
        events.append(NodeFault(t, ad_id, up=False, retain_state=retain_state))
        events.append(
            NodeFault(t + down_for, ad_id, up=True, retain_state=retain_state)
        )
        t += spacing
    return FaultPlan(tuple(events))


def partition_plan(
    graph: InterADGraph,
    start_time: float = 100.0,
    duration: float = 200.0,
    fraction: float = 0.3,
    seed: int = 0,
) -> FaultPlan:
    """Partition the internet for a bounded window, then heal it.

    A seeded BFS from a random AD grows a connected island of roughly
    ``fraction`` of the ADs; every link crossing the island boundary
    goes down at ``start_time`` and comes back at ``start_time +
    duration``.  Unlike the flap/crash generators this *deliberately*
    disconnects the internet -- partition behaviour is the thing being
    measured -- so candidates are not restricted to non-bridges.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    if duration <= 0:
        raise ValueError("partition duration must be > 0")
    rng = random.Random(seed)
    ids = sorted(graph.ad_ids())
    if len(ids) < 2:
        raise ValueError("cannot partition a single-AD internet")
    target = max(1, int(len(ids) * fraction))
    start = rng.choice(ids)
    island = {start}
    frontier = [start]
    while frontier and len(island) < target:
        node = frontier.pop(0)
        for nbr in sorted(graph.neighbors(node)):
            if nbr not in island:
                island.add(nbr)
                frontier.append(nbr)
                if len(island) >= target:
                    break
    cut = sorted(
        link.key
        for link in graph.links(include_down=False)
        if (link.key[0] in island) != (link.key[1] in island)
    )
    if not cut:
        raise ValueError("partition island has no boundary links")
    events: List[FaultEvent] = [
        LinkFault(start_time, a, b, up=False) for a, b in cut
    ]
    events.extend(
        LinkFault(start_time + duration, a, b, up=True) for a, b in cut
    )
    return FaultPlan(tuple(events))


def lossy_period_plan(
    spec: Impairment,
    start_time: float = 100.0,
    duration: float = 400.0,
    link: Optional[Tuple[ADId, ADId]] = None,
) -> FaultPlan:
    """Apply an impairment for a bounded window, then restore ``PERFECT``.

    ``link=None`` impairs every link (the channel default); note the
    restore resets the affected scope to :data:`~repro.faults.channel.PERFECT`,
    not to whatever impairment preceded the window.
    """
    return FaultPlan(
        (
            ImpairmentChange(start_time, spec, link),
            ImpairmentChange(start_time + duration, PERFECT, link),
        )
    )
