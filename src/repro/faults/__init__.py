"""Deterministic fault injection: lossy channels, churn plans, probing.

The paper requires the protocols to be "somewhat adaptive to changes in
inter-AD topology" (Section 2.2), but the base simulator delivers every
control message perfectly and the only dynamics model is a clean link
up/down :class:`~repro.adgraph.failures.FailurePlan`.  This package is
the chaos layer that turns those qualitative robustness claims into
measurable sweeps (experiment E11):

* :mod:`repro.faults.channel` -- per-link, seed-deterministic message
  impairments (loss, duplication, reordering jitter, burst outages)
  plugged into :class:`~repro.simul.network.SimNetwork`;
* :mod:`repro.faults.plan` -- the :class:`FaultPlan` DSL generalizing
  ``FailurePlan`` with AD crash/restart events and scheduled impairment
  changes, plus seeded generators;
* :mod:`repro.faults.prober` -- :class:`RoutePulse`, a data-plane
  reachability sampler producing blackhole-time, loop-count, hijack, and
  time-to-repair distributions;
* :mod:`repro.faults.misbehavior` -- :class:`MisbehaviorPlan`, the
  Byzantine axis (experiment E12): scheduled lies (route leaks, bogus
  origins, stale replays, metric lying, policy-term forgery) told by a
  single misbehaving AD, with seeded role-based liar selection.

Everything is seeded: the same plan on the same scenario replays the
same impairment decisions message for message, so E11's tables are as
deterministic as every other committed artifact.
"""

from repro.faults.channel import (
    PERFECT,
    ChannelModel,
    ImpairedChannel,
    Impairment,
)
from repro.faults.plan import (
    FaultPlan,
    ImpairmentChange,
    LinkFault,
    NodeFault,
    ad_crash_plan,
    crash_candidates,
    link_flap_plan,
    lossy_period_plan,
    merge_plans,
)
from repro.faults.misbehavior import (
    LIES,
    ROLES,
    MisbehaviorPlan,
    MisbehaviorStart,
    MisbehaviorStop,
    liar_by_role,
    misbehavior_plan,
    pick_victim_stub,
)
from repro.faults.prober import FlowOutage, ProbeSample, RoutePulse

__all__ = [
    "LIES",
    "PERFECT",
    "ROLES",
    "ChannelModel",
    "FaultPlan",
    "FlowOutage",
    "ImpairedChannel",
    "Impairment",
    "ImpairmentChange",
    "LinkFault",
    "MisbehaviorPlan",
    "MisbehaviorStart",
    "MisbehaviorStop",
    "NodeFault",
    "ProbeSample",
    "RoutePulse",
    "ad_crash_plan",
    "crash_candidates",
    "liar_by_role",
    "link_flap_plan",
    "lossy_period_plan",
    "merge_plans",
    "misbehavior_plan",
    "pick_victim_stub",
]
