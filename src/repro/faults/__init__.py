"""Deterministic fault injection: lossy channels, churn plans, probing.

The paper requires the protocols to be "somewhat adaptive to changes in
inter-AD topology" (Section 2.2), but the base simulator delivers every
control message perfectly and the only dynamics model is a clean link
up/down :class:`~repro.adgraph.failures.FailurePlan`.  This package is
the chaos layer that turns those qualitative robustness claims into
measurable sweeps (experiment E11):

* :mod:`repro.faults.channel` -- per-link, seed-deterministic message
  impairments (loss, duplication, reordering jitter, burst outages)
  plugged into :class:`~repro.simul.network.SimNetwork`;
* :mod:`repro.faults.plan` -- the :class:`FaultPlan` DSL generalizing
  ``FailurePlan`` with AD crash/restart events and scheduled impairment
  changes, plus seeded generators;
* :mod:`repro.faults.prober` -- :class:`RoutePulse`, a data-plane
  reachability sampler producing blackhole-time, loop-count, and
  time-to-repair distributions.

Everything is seeded: the same plan on the same scenario replays the
same impairment decisions message for message, so E11's tables are as
deterministic as every other committed artifact.
"""

from repro.faults.channel import (
    PERFECT,
    ChannelModel,
    ImpairedChannel,
    Impairment,
)
from repro.faults.plan import (
    FaultPlan,
    ImpairmentChange,
    LinkFault,
    NodeFault,
    ad_crash_plan,
    crash_candidates,
    link_flap_plan,
    lossy_period_plan,
    merge_plans,
)
from repro.faults.prober import FlowOutage, ProbeSample, RoutePulse

__all__ = [
    "PERFECT",
    "ChannelModel",
    "FaultPlan",
    "FlowOutage",
    "ImpairedChannel",
    "Impairment",
    "ImpairmentChange",
    "LinkFault",
    "NodeFault",
    "ProbeSample",
    "RoutePulse",
    "ad_crash_plan",
    "crash_candidates",
    "link_flap_plan",
    "lossy_period_plan",
    "merge_plans",
]
