"""Tests for the ORWG/IDPR architecture (LS + source routing + PTs)."""

import pytest

from repro.core.evaluation import evaluate_availability, sample_flows
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.selection import RouteSelectionPolicy
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.protocols.orwg import ORWGProtocol
from repro.protocols.orwg.messages import DataPacket
from tests.helpers import line_graph, open_db


@pytest.fixture
def diamond_proto(diamond):
    proto = ORWGProtocol(diamond, open_db(diamond))
    proto.converge()
    return proto


class TestSourceRouting:
    def test_source_computes_best_legal_route(self, diamond_proto):
        assert diamond_proto.source_route(FlowSpec(0, 3)) == (0, 1, 3)

    def test_selection_criteria_private_to_source(self, diamond_proto):
        sel = RouteSelectionPolicy(avoid_ads=frozenset({1}))
        assert diamond_proto.source_route(FlowSpec(0, 3), sel) == (0, 2, 3)

    def test_full_availability(self, gen_graph, gen_restricted):
        proto = ORWGProtocol(gen_graph, gen_restricted)
        proto.converge()
        flows = sample_flows(gen_graph, 30, seed=11)
        report = evaluate_availability(
            gen_graph, gen_restricted, flows, proto.find_route
        )
        assert report.availability == 1.0
        assert report.n_illegal == 0

    def test_k_routes_multiple_alternatives(self, diamond_proto):
        routes = diamond_proto.k_routes(FlowSpec(0, 3), k=3)
        assert [r.path for r in routes] == [(0, 1, 3), (0, 2, 3)]

    def test_transit_ads_do_no_route_computation(self, diamond_proto):
        diamond_proto.source_route(FlowSpec(0, 3))
        comps = diamond_proto.network.metrics.computations
        assert comps.get((0, "synthesis"), 0) == 1
        assert comps.get((1, "synthesis"), 0) == 0
        assert comps.get((2, "synthesis"), 0) == 0


class TestSetup:
    def test_setup_establishes_and_caches(self, diamond_proto):
        attempt = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        assert attempt.established
        assert attempt.route == (0, 1, 3)
        assert attempt.latency > 0
        # Transit AD 1 and both endpoints hold the handle.
        assert diamond_proto.pg_cache_size(0) == 1
        assert diamond_proto.pg_cache_size(1) == 1
        assert diamond_proto.pg_cache_size(3) == 1
        assert diamond_proto.pg_cache_size(2) == 0

    def test_setup_fails_without_route(self):
        g = line_graph(3)
        proto = ORWGProtocol(g, PolicyDatabase())  # nobody transits
        proto.converge()
        attempt = proto.open_route(FlowSpec(0, 2))
        proto.network.run()
        assert attempt.state == "failed"
        assert "no legal route" in attempt.reason

    def test_setup_latency_is_route_round_trip(self, diamond_proto):
        attempt = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        # Forward (delay 1+1) plus ack (1+1) over the cheap branch.
        assert attempt.latency == pytest.approx(4.0)

    def test_trivial_flow_established_immediately(self, diamond_proto):
        attempt = diamond_proto.open_route(FlowSpec(0, 0))
        diamond_proto.network.run()
        assert attempt.established
        assert attempt.latency == 0.0


class TestDataForwarding:
    def test_handle_packets_delivered(self, diamond_proto):
        attempt = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        diamond_proto.send_data(attempt, packets=5)
        diamond_proto.network.run()
        assert diamond_proto.delivered(attempt) == 5

    def test_datagram_mode_delivers_with_bigger_headers(self, diamond_proto):
        attempt = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        diamond_proto.send_data(attempt, packets=3, carry_route=True)
        diamond_proto.network.run()
        assert diamond_proto.delivered(attempt) == 3
        handle_pkt = DataPacket(attempt.handle, attempt.flow)
        route_pkt = DataPacket(attempt.handle, attempt.flow, attempt.route, 1)
        assert route_pkt.header_bytes() > handle_pkt.header_bytes()

    def test_unknown_handle_dropped(self, diamond_proto):
        attempt = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        # Teardown then send: caches are gone, packets die at first PG.
        diamond_proto.teardown(attempt)
        diamond_proto.network.run()
        diamond_proto.send_data(attempt, packets=2)
        diamond_proto.network.run()
        assert diamond_proto.delivered(attempt) == 0

    def test_per_packet_validation_counts(self, diamond_proto):
        attempt = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        diamond_proto.send_data(attempt, packets=4)
        diamond_proto.network.run()
        node1 = diamond_proto.network.node(1)
        assert node1.pg.total_forwarded() == 4


class TestPolicyDynamics:
    def test_stale_cache_revalidated_on_policy_change(self, diamond):
        db = open_db(diamond)
        proto = ORWGProtocol(diamond, db)
        proto.converge()
        attempt = proto.open_route(FlowSpec(0, 3))
        proto.network.run()
        assert attempt.established
        # AD 1 withdraws transit for source 0 and re-floods.
        db.remove_terms(1)
        db.add_term(PolicyTerm(owner=1, sources=ADSet.of([2])))
        proto.notify_policy_change(1)
        proto.network.run()
        # The next data packet hits a stale handle: revalidation fails,
        # a NAK tears the route down, the source learns of the failure.
        proto.send_data(attempt, packets=1)
        proto.network.run()
        assert proto.delivered(attempt) == 0
        assert attempt.state == "failed"
        assert proto.pg_cache_size(1) == 0
        # A fresh setup now picks the still-legal alternative.
        retry = proto.open_route(FlowSpec(0, 3))
        proto.network.run()
        assert retry.established
        assert retry.route == (0, 2, 3)

    def test_setup_rejected_when_view_stale(self, diamond):
        """A source whose LSDB predates a policy change cites a term the
        owner no longer honours; the PG NAKs at setup time."""
        db = open_db(diamond)
        proto = ORWGProtocol(diamond, db)
        proto.converge()
        # Change AD 1's policy but do NOT re-flood (stale views).
        db.remove_terms(1)
        attempt = proto.open_route(FlowSpec(0, 3))
        proto.network.run()
        assert attempt.state == "failed"
        assert "AD 1" in attempt.reason


class TestTopologyDynamics:
    def test_route_recomputed_after_failure(self, diamond_proto):
        proto = diamond_proto
        assert proto.source_route(FlowSpec(0, 3)) == (0, 1, 3)
        proto.network.set_link_status(1, 3, up=False)
        proto.network.run()
        assert proto.source_route(FlowSpec(0, 3)) == (0, 2, 3)

    def test_rib_size_counts_lsdb_and_cache(self, diamond_proto):
        attempt = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        assert diamond_proto.rib_size(1) == diamond_proto.graph.num_ads + 1


class TestHandleReuse:
    def test_distinct_setups_get_distinct_handles(self, diamond_proto):
        a1 = diamond_proto.open_route(FlowSpec(0, 3))
        a2 = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        assert a1.handle != a2.handle
        assert a1.established and a2.established

    def test_one_route_serves_many_packets(self, diamond_proto):
        """Policy routes are long-lived: one setup amortises over the
        whole packet stream (Section 5.4.1)."""
        attempt = diamond_proto.open_route(FlowSpec(0, 3))
        diamond_proto.network.run()
        diamond_proto.send_data(attempt, packets=50)
        diamond_proto.network.run()
        assert diamond_proto.delivered(attempt) == 50
        assert diamond_proto.pg_cache_size(1) == 1


class TestRouteRepair:
    def test_link_failure_under_established_route_naks_source(self, diamond):
        """A PG whose cached next hop dies tears the route down toward
        the source instead of blackholing data packets."""
        proto = ORWGProtocol(diamond, open_db(diamond))
        proto.converge()
        attempt = proto.open_route(FlowSpec(0, 3))
        proto.network.run()
        assert attempt.route == (0, 1, 3)
        # Fail the downstream link 1-3; LSAs reflood, but the cached
        # handle at AD 1 still points into the dead link.
        proto.network.set_link_status(1, 3, up=False)
        proto.network.run()
        proto.send_data(attempt, packets=1)
        proto.network.run()
        assert proto.delivered(attempt) == 0
        assert attempt.state == "failed"
        assert "down" in attempt.reason
        # Re-setup finds the surviving branch.
        retry = proto.open_route(FlowSpec(0, 3))
        proto.network.run()
        assert retry.established
        assert retry.route == (0, 2, 3)
        proto.send_data(retry, packets=3)
        proto.network.run()
        assert proto.delivered(retry) == 3

    def test_source_access_link_failure_detected_locally(self, diamond):
        proto = ORWGProtocol(diamond, open_db(diamond))
        proto.converge()
        attempt = proto.open_route(FlowSpec(0, 3))
        proto.network.run()
        proto.network.set_link_status(0, 1, up=False)
        proto.network.run()
        proto.send_data(attempt, packets=1)
        proto.network.run()
        assert attempt.state == "failed"
        assert proto.delivered(attempt) == 0
