"""Tests for the command-line interface."""

from types import SimpleNamespace

import pytest

from repro.cli import main


class TestTopology:
    def test_shape_flags(self, capsys):
        assert main(["topology", "--seed", "3", "--backbones", "2"]) == 0
        out = capsys.readouterr().out
        assert "ADs" in out and "connected" in out and "yes" in out

    def test_target_size(self, capsys):
        assert main(["topology", "--target", "80"]) == 0
        out = capsys.readouterr().out
        assert "ADs" in out


class TestRoute:
    def test_known_flow(self, capsys):
        code = main(
            ["route", "--seed", "0", "--src", "15", "--dst", "62", "-k", "2"]
        )
        out = capsys.readouterr().out
        if code == 0:
            assert "Policy routes" in out
            assert "->" in out
        else:
            assert "no legal route" in out

    def test_unknown_ad_rejected(self, capsys):
        assert main(["route", "--src", "0", "--dst", "9999"]) == 2
        assert "not in topology" in capsys.readouterr().err

    def test_qos_flag(self, capsys):
        code = main(
            ["route", "--src", "15", "--dst", "62", "--qos", "low_cost"]
        )
        assert code in (0, 1)


class TestAudit:
    def test_summary(self, capsys):
        assert main(["audit", "--restrictiveness", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "Connectivity audit" in out

    def test_verbose_lists_findings(self, capsys):
        assert main(["audit", "--restrictiveness", "0.6", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "blocked" in out


class TestImpact:
    def test_withdrawal(self, capsys):
        assert main(["impact", "--owner", "0"]) == 0
        out = capsys.readouterr().out
        assert "Impact of policy change at AD 0" in out

    def test_rank(self, capsys):
        assert main(["impact", "--rank", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical transit" in out

    def test_unknown_owner(self, capsys):
        assert main(["impact", "--owner", "9999"]) == 2


class TestExperiments:
    def test_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp in ("E1", "E5", "E10", "E13", "A1-A4"):
            assert exp in out
        assert "pytest benchmarks/" in out


def test_scorecard_runs(capsys):
    assert main(["scorecard", "--flows", "8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1 (measured)" in out
    assert "LS/Src/PT" in out


class TestConverge:
    def test_initial_only(self, capsys):
        assert main(["converge", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Convergence" in out and "orwg" in out

    def test_with_failures(self, capsys):
        assert main(["converge", "--seed", "2", "--failures", "1"]) == 0
        out = capsys.readouterr().out
        assert "mean msgs/event" in out


class TestReport:
    def test_collates_existing_artifacts(self, tmp_path, capsys):
        out = tmp_path / "REPORT.txt"
        code = main(["report", "--skip-run", "--output", str(out)])
        assert code == 0
        text = out.read_text()
        assert "REPRODUCTION REPORT" in text
        assert "experiment tables" in capsys.readouterr().out


class TestExperimentsRun:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiments", "run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_seed_and_loss_flags_reach_harness(self, monkeypatch, capsys, tmp_path):
        calls = {}

        def fake_run(name, **kwargs):
            calls["name"] = name
            calls.update(kwargs)
            return SimpleNamespace(name=name), [], "table"

        monkeypatch.setattr("repro.harness.run_experiment", fake_run)
        code = main([
            "experiments", "run", "robustness",
            "--loss", "0.1", "--seed", "7", "--runs-dir", str(tmp_path),
        ])
        assert code == 0
        assert calls["name"] == "robustness"
        assert calls["seed"] == 7
        assert calls["loss"] == 0.1
        assert "table" in capsys.readouterr().out

    def test_liar_and_lie_flags_reach_harness(self, monkeypatch, tmp_path):
        calls = {}

        def fake_run(name, **kwargs):
            calls["name"] = name
            calls.update(kwargs)
            return SimpleNamespace(name=name), [], ""

        monkeypatch.setattr("repro.harness.run_experiment", fake_run)
        code = main([
            "experiments", "run", "robustness-misbehavior",
            "--liar", "ad=4", "--lie", "route-leak",
            "--runs-dir", str(tmp_path),
        ])
        assert code == 0
        # Dashed names normalize to the registered underscore name.
        assert calls["name"] == "robustness_misbehavior"
        assert calls["liar"] == "ad=4"
        assert calls["lie"] == "route-leak"

    def test_overrides_default_to_none(self, monkeypatch, tmp_path):
        calls = {}

        def fake_run(name, **kwargs):
            calls.update(kwargs)
            return SimpleNamespace(name=name), [], ""

        monkeypatch.setattr("repro.harness.run_experiment", fake_run)
        assert main([
            "experiments", "run", "robustness", "--runs-dir", str(tmp_path),
        ]) == 0
        assert calls["seed"] is None
        assert calls["loss"] is None


class TestOverloadFlags:
    def _capture(self, monkeypatch):
        calls = {}

        def fake_run(name, **kwargs):
            calls["name"] = name
            calls.update(kwargs)
            return SimpleNamespace(name=name), [], ""

        monkeypatch.setattr("repro.harness.run_experiment", fake_run)
        return calls

    def test_overload_flags_reach_harness(self, monkeypatch, tmp_path):
        calls = self._capture(monkeypatch)
        code = main([
            "experiments", "run", "robustness-churn",
            "--queue-capacity", "16", "--churn-hz", "0.25",
            "--pacing", "full", "--runs-dir", str(tmp_path),
        ])
        assert code == 0
        assert calls["name"] == "robustness_churn"
        assert calls["queue_capacity"] == 16
        assert calls["churn_hz"] == 0.25
        assert calls["pacing"] == "full"

    def test_negative_capacity_passes_through(self, monkeypatch, tmp_path):
        # Negative means "remove the queue"; the harness maps it to None.
        calls = self._capture(monkeypatch)
        assert main([
            "experiments", "run", "robustness-churn",
            "--queue-capacity", "-1", "--runs-dir", str(tmp_path),
        ]) == 0
        assert calls["queue_capacity"] == -1

    def test_overload_flags_default_to_none(self, monkeypatch, tmp_path):
        calls = self._capture(monkeypatch)
        assert main([
            "experiments", "run", "robustness", "--runs-dir", str(tmp_path),
        ]) == 0
        assert calls["queue_capacity"] is None
        assert calls["churn_hz"] is None
        assert calls["pacing"] is None

    def test_pacing_choices_are_validated(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "experiments", "run", "robustness-churn",
                "--pacing", "jitter", "--runs-dir", str(tmp_path),
            ])
        assert "--pacing" in capsys.readouterr().err
