"""Index/scan equivalence for the policy-term engine.

The indexed ``permitting_term`` is a pure optimisation: for every
database, flow, and traversal it must cite the *identical* term (same
``term_id``, not merely the same verdict) as the reference linear scan,
and it must keep doing so across mutations that bump ``version``.  These
properties are what lets every consumer -- synthesis, ground truth,
legality, the protocols, the data plane -- adopt the engine without any
routing answer changing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.sets import ADSet, TimeWindow
from repro.policy.terms import PolicyTerm
from repro.policy.uci import UCI

#: A deliberately small AD universe so random terms and flows collide
#: often -- equivalence on misses is as load-bearing as on hits.
ADS = list(range(8))

_ad_sets = st.one_of(
    st.just(ADSet.everyone()),
    st.builds(ADSet.of, st.frozensets(st.sampled_from(ADS), max_size=4)),
    st.builds(ADSet.excluding, st.frozensets(st.sampled_from(ADS), max_size=4)),
)

_class_sets = lambda enum: st.one_of(
    st.none(), st.frozensets(st.sampled_from(list(enum)), max_size=len(list(enum)))
)

_windows = st.one_of(
    st.just(TimeWindow.always()),
    st.builds(TimeWindow, st.integers(0, 23), st.integers(0, 23)),
)

_terms = st.builds(
    PolicyTerm,
    owner=st.sampled_from(ADS),
    sources=_ad_sets,
    dests=_ad_sets,
    prev_ads=_ad_sets,
    next_ads=_ad_sets,
    qos_classes=_class_sets(QOS),
    ucis=_class_sets(UCI),
    window=_windows,
    charge=st.floats(0.0, 5.0),
)

_flows = st.builds(
    FlowSpec,
    src=st.sampled_from(ADS),
    dst=st.sampled_from(ADS),
    qos=st.sampled_from(list(QOS)),
    uci=st.sampled_from(list(UCI)),
    hour=st.integers(0, 23),
)

_queries = st.tuples(
    st.sampled_from(ADS),  # owner being traversed
    _flows,
    st.sampled_from(ADS),  # prev
    st.sampled_from(ADS),  # next
)


def _assert_identical_citation(db, owner, flow, prev, nxt):
    indexed = db.permitting_term(owner, flow, prev, nxt)
    reference = db.scan_permitting_term(owner, flow, prev, nxt)
    if reference is None:
        assert indexed is None
    else:
        assert indexed is not None
        assert (indexed.owner, indexed.term_id) == (
            reference.owner,
            reference.term_id,
        )


@settings(max_examples=200, deadline=None)
@given(
    terms=st.lists(_terms, max_size=12),
    queries=st.lists(_queries, min_size=1, max_size=8),
    extra_term=_terms,
    removed_owner=st.sampled_from(ADS),
)
def test_indexed_engine_equals_linear_scan(terms, queries, extra_term, removed_owner):
    db = PolicyDatabase(terms)
    for owner, flow, prev, nxt in queries:
        _assert_identical_citation(db, owner, flow, prev, nxt)
    # Repeat the same queries: now served from the decision cache, still
    # citing the identical term.
    for owner, flow, prev, nxt in queries:
        _assert_identical_citation(db, owner, flow, prev, nxt)
    # Mutations bump the version; cached verdicts must not leak across.
    db.add_term(extra_term)
    for owner, flow, prev, nxt in queries:
        _assert_identical_citation(db, owner, flow, prev, nxt)
    db.remove_terms(removed_owner)
    for owner, flow, prev, nxt in queries:
        _assert_identical_citation(db, owner, flow, prev, nxt)


@settings(max_examples=100, deadline=None)
@given(terms=st.lists(_terms, max_size=10), query=_queries)
def test_copy_keeps_engines_independent(terms, query):
    """Mutating a copy never perturbs the original's cached decisions."""
    db = PolicyDatabase(terms)
    owner, flow, prev, nxt = query
    before = db.permitting_term(owner, flow, prev, nxt)
    clone = db.copy()
    clone.add_term(PolicyTerm(owner=owner))
    clone.remove_terms(owner)
    after = db.permitting_term(owner, flow, prev, nxt)
    assert (before is None) == (after is None)
    if before is not None:
        assert before.term_id == after.term_id
    _assert_identical_citation(clone, owner, flow, prev, nxt)
