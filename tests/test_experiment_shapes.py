"""Seed-robustness of the headline experiment shapes.

The benches run on committed seeds; these tests re-assert the *shape* of
each headline claim on different seeds and smaller settings, so the
reproduction's conclusions do not hinge on a lucky draw.  (Weaker
thresholds than the benches: shapes, not exact values.)
"""

import pytest

from repro.adgraph.failures import random_failure_plan
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.core.evaluation import evaluate_availability, sample_flows
from repro.policy.generators import restricted_policies, source_class_policies
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.idrp import IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.simul.runner import run_with_failures

SEEDS = [101, 202, 303]


def _setting(seed, restrictiveness=0.4):
    graph = generate_internet(
        TopologyConfig(
            num_backbones=2,
            regionals_per_backbone=3,
            campuses_per_parent=3,
            lateral_prob=0.4,
            bypass_prob=0.15,
            seed=seed,
        )
    )
    policies = restricted_policies(graph, restrictiveness, seed=seed).policies
    flows = sample_flows(graph, 25, seed=seed + 1)
    return graph, policies, flows


@pytest.mark.parametrize("seed", SEEDS)
class TestHeadlineShapes:
    def test_e3_shape_ls_pt_dominates(self, seed):
        """E3: the LS+PT designs are exactly available; path vector is
        not; nobody beats them."""
        graph, policies, flows = _setting(seed)
        results = {}
        for cls in (ORWGProtocol, LinkStateHopByHopProtocol, IDRPProtocol):
            proto = cls(graph.copy(), policies.copy())
            proto.converge()
            results[cls.name] = evaluate_availability(
                proto.graph, proto.policies, flows, proto.find_route
            )
        assert results["orwg"].availability == 1.0
        assert results["ls-hbh"].availability == 1.0
        assert results["idrp"].availability <= 1.0
        assert results["orwg"].n_illegal == 0
        assert results["ls-hbh"].n_illegal == 0

    def test_e4_shape_metric_cap_monotone(self, seed):
        """E4: raising the DV metric cap never makes a partition cheaper
        (strictly worse exactly when count-to-infinity fires -- whether
        it fires depends on delay races, which vary by seed)."""
        costs = {
            cap: _partition_cost(
                seed, lambda g, p, cap=cap: DistanceVectorProtocol(g, p, infinity=cap)
            )
            for cap in (16, 64)
        }
        assert costs[64] >= costs[16]

    def test_e5_shape_orwg_transit_work_is_zero(self, seed):
        """E5: ORWG transit ADs never compute routes regardless of
        granularity; ls-hbh transits always do."""
        graph, _, _ = _setting(seed)
        scen = source_class_policies(graph, 4, refusal_prob=0.25, seed=seed)
        flows = sample_flows(graph, 15, seed=seed + 2)
        sources = {f.src for f in flows}

        orwg = ORWGProtocol(graph.copy(), scen.policies.copy())
        hbh = LinkStateHopByHopProtocol(graph.copy(), scen.policies.copy())
        for proto in (orwg, hbh):
            proto.converge()
            for flow in flows:
                proto.find_route(flow)

        def transit_comps(proto, kind):
            return sum(
                n
                for (ad, k), n in proto.network.metrics.computations.items()
                if k == kind and ad not in sources
            )

        assert transit_comps(orwg, "synthesis") == 0
        assert transit_comps(hbh, "policy_route") > 0

    def test_e1_shape_no_protocol_loops(self, seed):
        """Every implemented design point forwards loop-free on every
        seed (Table 1's integrity column)."""
        from repro.core.scorecard import build_scorecard

        graph, policies, flows = _setting(seed)
        rows = build_scorecard(graph, policies, flows[:12])
        for row in rows:
            assert row.forwarding_loops == 0
        best = max(rows, key=lambda r: (r.availability, r.source_control))
        assert best.point.label in {"LS/Src/PT", "LS/HbH/PT"}


def _partition_cost(seed, factory):
    """Messages to reconverge after partitioning one stub AD."""
    graph, policies, _ = _setting(seed)
    stub = next(a for a in graph.stub_ads() if graph.degree(a.ad_id) == 1)
    link = graph.links_of(stub.ad_id)[0]
    proto = factory(graph.copy(), policies.copy())
    proto.converge()
    before = proto.network.metrics.snapshot(proto.network.sim.now)
    proto.network.set_link_status(link.a, link.b, up=False)
    proto.network.run()
    after = proto.network.metrics.snapshot(proto.network.sim.now)
    return after.delta(before).total_messages


def test_e4_count_to_infinity_fires_on_some_seed():
    """The bounce is a race: it need not fire on every topology, but it
    must exist -- and where it fires, the up/down rule must beat it."""
    from repro.policy.qos import QOS

    fired = False
    for seed in SEEDS:
        naive16 = _partition_cost(
            seed, lambda g, p: DistanceVectorProtocol(g, p, infinity=16)
        )
        naive64 = _partition_cost(
            seed, lambda g, p: DistanceVectorProtocol(g, p, infinity=64)
        )
        if naive64 > naive16:
            fired = True
            ecma = _partition_cost(
                seed,
                lambda g, p: ECMAProtocol(
                    g, p, qos_classes=frozenset({QOS.DEFAULT})
                ),
            )
            assert ecma < naive64
    assert fired, "no seed exhibited count-to-infinity"


@pytest.mark.parametrize("seed", SEEDS)
def test_reconvergence_under_plans_stays_loop_free(seed):
    """Failure plans never induce forwarding loops post-quiescence."""
    graph, policies, flows = _setting(seed, restrictiveness=0.2)
    proto = ECMAProtocol(graph, policies)
    plan = random_failure_plan(proto.graph, count=2, repair=True, seed=seed)
    run_with_failures(proto.build(), plan)
    for flow in flows[:10]:
        proto.find_route(flow)
    assert proto.forwarding_loops == 0
