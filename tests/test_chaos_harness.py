"""The episodic chaos driver and its plan/spec vocabulary (sim side).

E15's machinery decomposed: partition plans that deliberately disconnect
the internet, the FaultSpec chaos axis, the substrate sweep, the ring
scenario, the record's v7 ``chaos`` block, and the driver itself -- whose
simulator runs must stay byte-deterministic (the determinism gate diffs
their table rows) and must show graceful restart riding out a crash the
legacy path cannot.
"""

import json

import pytest

from repro.faults.channel import Impairment
from repro.faults.plan import (
    FaultPlan,
    ImpairmentChange,
    LinkFault,
    NodeFault,
    partition_plan,
)
from repro.harness import run_experiment
from repro.harness.chaos import execute_chaos_cell
from repro.harness.record import SCHEMA_VERSION, RunRecord
from repro.harness.spec import (
    Cell,
    ExperimentSpec,
    FailureSpec,
    FaultSpec,
    MisbehaviorSpec,
    ProtocolSpec,
    ScenarioSpec,
    TrafficSpec,
)
from repro.live.chaos import LiveFaultPlan, grouped_events
from repro.workloads import ring_scenario

from .helpers import mk_graph


def ring8():
    return mk_graph(
        [(i, "Rt") for i in range(8)],
        [(i, (i + 1) % 8) for i in range(8)],
    )


def _chaos_cell(protocol=None, fault=None, traffic=None, *, substrate="sim",
                misbehavior=MisbehaviorSpec()):
    return Cell(
        experiment="chaos-test",
        index=0,
        scenario=ScenarioSpec(kind="ring", seed=0, num_flows=12),
        protocol=protocol or ProtocolSpec("plain-ls"),
        failure=FailureSpec(),
        fault=fault or FaultSpec(restarts=1, partitions=1, seed=3),
        misbehavior=misbehavior,
        traffic=traffic or TrafficSpec(flows=2000, pairs=64, seed=3),
        substrate=substrate,
    )


@pytest.fixture(scope="module")
def sim_record():
    return execute_chaos_cell(_chaos_cell())


@pytest.fixture(scope="module")
def graced_record():
    return execute_chaos_cell(
        _chaos_cell(
            ProtocolSpec(
                "plain-ls",
                label="plain-ls+gr",
                options=(("graceful", "all"),),
            )
        )
    )


# ------------------------------------------------------------ partition plan


def test_partition_plan_cuts_a_boundary_and_heals_it():
    graph = ring8()
    plan = partition_plan(graph, start_time=100.0, duration=200.0,
                          fraction=0.3, seed=7)
    downs = [ev for ev in plan if not ev.up]
    ups = [ev for ev in plan if ev.up]
    # An island of ~30% of a ring has exactly two boundary links.
    assert len(downs) == 2 and len(ups) == 2
    assert all(ev.time == 100.0 for ev in downs)
    assert all(ev.time == 300.0 for ev in ups)
    assert sorted((ev.a, ev.b) for ev in downs) == sorted(
        (ev.a, ev.b) for ev in ups
    )
    # Seeded: the same seed replays the same cut.
    again = partition_plan(graph, start_time=100.0, duration=200.0,
                           fraction=0.3, seed=7)
    assert list(plan) == list(again)


def test_partition_plan_validation():
    graph = ring8()
    with pytest.raises(ValueError, match="fraction must be in"):
        partition_plan(graph, fraction=0.0)
    with pytest.raises(ValueError, match="fraction must be in"):
        partition_plan(graph, fraction=1.0)
    with pytest.raises(ValueError, match="duration must be > 0"):
        partition_plan(graph, duration=0.0)
    with pytest.raises(ValueError, match="single-AD"):
        partition_plan(mk_graph([(0, "Rt")], []))


# ------------------------------------------------------------- FaultSpec axis


def test_fault_spec_chaos_flags():
    assert not FaultSpec().chaotic
    assert FaultSpec(restarts=1).chaotic
    assert FaultSpec(partitions=1).chaotic
    # Chaos is its own regime, not part of the legacy active axis.
    assert not FaultSpec(restarts=1).active
    assert FaultSpec(restarts=1, partitions=2).display == (
        "restarts=1,partitions=2"
    )


def test_build_chaos_plan_restarts_then_partitions():
    spec = FaultSpec(restarts=2, partitions=1, seed=0,
                     start_time=100.0, spacing=400.0)
    plan = spec.build_chaos_plan(ring8())
    node_events = [ev for ev in plan if isinstance(ev, NodeFault)]
    link_events = [ev for ev in plan if isinstance(ev, LinkFault)]
    # Two crash/restore cycles, state retained, each down for spacing/2.
    assert [ev.time for ev in node_events] == [100.0, 300.0, 500.0, 700.0]
    assert all(ev.retain_state for ev in node_events)
    assert [ev.up for ev in node_events] == [False, True, False, True]
    # The partition window opens only after the last restart completes.
    assert min(ev.time for ev in link_events) == 100.0 + 2 * 400.0
    assert {ev.up for ev in link_events} == {False, True}


# ---------------------------------------------------------------- scenarios


def test_ring_scenario_shape():
    scenario = ring_scenario(num_ads=8, seed=0, num_flows=16)
    assert scenario.graph.num_ads == 8
    assert scenario.graph.num_links == 8
    assert all(
        len(scenario.graph.neighbors(ad)) == 2
        for ad in scenario.graph.ad_ids()
    )
    assert len(scenario.flows) == 16
    assert "ring" in scenario.name


def test_substrate_axis_expands_twins_adjacent():
    spec = ExperimentSpec(
        name="t",
        scenarios=(ScenarioSpec(kind="ring"),),
        protocols=(
            ProtocolSpec("plain-ls"),
            ProtocolSpec("plain-ls", label="plain-ls+gr",
                         options=(("graceful", "all"),)),
        ),
        substrates=("sim", "live"),
    )
    cells = spec.cells()
    assert len(cells) == 4
    # Innermost axis: each design point's sim/live twins sit adjacent.
    assert [c.substrate for c in cells] == ["sim", "live", "sim", "live"]
    assert cells[0].protocol.display == cells[1].protocol.display
    assert [c.index for c in cells] == [0, 1, 2, 3]


# ----------------------------------------------------------- rejection paths


def test_execute_chaos_cell_rejections():
    with pytest.raises(ValueError, match="no chaos program"):
        execute_chaos_cell(_chaos_cell(fault=FaultSpec()))
    with pytest.raises(ValueError, match="misbehavior"):
        execute_chaos_cell(
            _chaos_cell(misbehavior=MisbehaviorSpec(lie="blackhole"))
        )
    with pytest.raises(ValueError, match="legacy fault axis"):
        execute_chaos_cell(
            _chaos_cell(fault=FaultSpec(restarts=1, flaps=1))
        )
    with pytest.raises(ValueError, match="loss impairments only"):
        execute_chaos_cell(
            _chaos_cell(
                fault=FaultSpec(restarts=1, dup=0.1), substrate="live"
            )
        )
    with pytest.raises(ValueError, match="unknown substrate"):
        execute_chaos_cell(
            _chaos_cell(fault=FaultSpec(restarts=1), substrate="quantum")
        )


def test_live_fault_plan_rejects_sim_only_impairments():
    dup = FaultPlan((ImpairmentChange(10.0, Impairment(dup_prob=0.1)),))
    with pytest.raises(ValueError, match="dup/jitter"):
        LiveFaultPlan(dup)
    per_link = FaultPlan(
        (ImpairmentChange(10.0, Impairment(drop_prob=0.1), link=(0, 1)),)
    )
    with pytest.raises(ValueError, match="per-link impairments"):
        LiveFaultPlan(per_link)
    # Plain network-wide loss is the one translatable impairment.
    ok = FaultPlan((ImpairmentChange(10.0, Impairment(drop_prob=0.1)),))
    assert len(LiveFaultPlan(ok)) == 1


def test_grouped_events_buckets_identical_fire_times():
    plan = FaultPlan((
        LinkFault(10.0, 0, 1, up=False),
        LinkFault(10.0, 1, 2, up=False),
        LinkFault(20.0, 0, 1, up=True),
    ))
    groups = grouped_events(plan)
    assert [(t, len(evs)) for t, evs in groups] == [(10.0, 2), (20.0, 1)]


def test_run_experiment_validates_chaos_overrides():
    with pytest.raises(ValueError, match="--restarts must be non-negative"):
        run_experiment("live_chaos", restarts=-1)
    with pytest.raises(ValueError, match="--partitions must be non-negative"):
        run_experiment("live_chaos", partitions=-1)
    with pytest.raises(ValueError, match="unknown graceful-restart"):
        run_experiment("live_chaos", gr="bogus")


# ------------------------------------------------------------- the sim driver


def test_sim_chaos_record_shape(sim_record):
    rec = sim_record
    assert rec.substrate == "sim"
    assert rec.schema_version == SCHEMA_VERSION
    assert rec.quiesced
    chaos = rec.chaos
    assert chaos["restarts"] == 1 and chaos["partitions"] == 1
    labels = [g["label"] for g in chaos["groups"]]
    # One crash/restore cycle, then one partition window and its heal.
    assert len(labels) == 4
    assert "crash" in labels[0] and "restart" in labels[1]
    assert labels[2].startswith("partition") and labels[3].startswith("heal")
    assert all(g["quiesced"] for g in chaos["groups"])
    # While the partition window is open the settled control plane has
    # genuinely fewer routable flows; the heal restores the baseline.
    assert chaos["groups"][2]["routable_after"] < chaos["baseline_routable"]
    assert chaos["groups"][3]["routable_after"] == chaos["baseline_routable"]
    assert 0.0 <= chaos["availability"] <= 1.0
    assert chaos["baseline_routable"] > 0
    assert len(chaos["routes_digest"]) == 16
    # No graceful restart, no supervisor: the sim legacy regime.
    assert chaos["graceful"] == "none"
    assert chaos["graceful_summary"] == {
        "holds": 0, "expirations": 0, "resyncs": 0,
    }
    assert chaos["serve_restarts"] == 0
    assert chaos["supervisor"] is None
    # The data-plane axis rode along: stale-FIB epochs were replayed.
    assert rec.dataplane is not None
    assert len(rec.dataplane["series"]["epochs"]) >= 2 + len(labels)


def test_sim_chaos_is_deterministic(sim_record):
    again = execute_chaos_cell(_chaos_cell())
    assert again.comparable() == sim_record.comparable()


def test_graceful_restart_rides_out_the_crash(sim_record, graced_record):
    plain = sim_record.chaos
    graced = graced_record.chaos
    assert graced["graceful"] == "helper+resync"
    assert graced["graceful_summary"]["holds"] == 2
    assert graced["graceful_summary"]["resyncs"] == 1
    assert graced["graceful_summary"]["expirations"] == 0
    plain_crash = next(
        g for g in plain["groups"] if "crash" in g["label"]
    )
    graced_crash = next(
        g for g in graced["groups"] if "crash" in g["label"]
    )
    # The headline: helpers hold the restarting AD's routes, so the
    # control plane stays whole through the crash the legacy path loses
    # flows to.
    assert graced_crash["routable_during"] == graced["baseline_routable"]
    assert plain_crash["routable_during"] < plain["baseline_routable"]
    assert graced["availability"] > plain["availability"]


# ------------------------------------------------------------- record schema


def test_runrecord_v7_roundtrip(sim_record):
    line = sim_record.to_json()
    loaded = RunRecord.from_json(line)
    assert loaded.comparable() == sim_record.comparable()
    assert loaded.chaos["routes_digest"] == sim_record.chaos["routes_digest"]


def test_runrecord_v6_lines_load_with_chaos_defaulted(sim_record):
    data = json.loads(sim_record.to_json())
    data["schema_version"] = 6
    del data["chaos"]
    loaded = RunRecord.from_json(json.dumps(data))
    assert loaded.schema_version == SCHEMA_VERSION
    assert loaded.chaos is None


def test_runrecord_rejects_unknown_schema(sim_record):
    data = json.loads(sim_record.to_json())
    data["schema_version"] = 99
    with pytest.raises(ValueError, match="unsupported"):
        RunRecord.from_json(json.dumps(data))
