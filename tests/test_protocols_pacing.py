"""Tests for the overload defenses: update pacing, hold-down, and flap
damping -- config parsing, registry plumbing, the damper's penalty
model, per-protocol behaviour, and the hypothesis-checked invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.pacing import (
    FEATURES,
    FULL,
    REUSE_TICK_MIN,
    UNPACED,
    FlapDamper,
    OverloadDefenseMixin,
    PacingConfig,
    pacing_from,
)
from repro.protocols.registry import make_protocol
from tests.helpers import line_graph, open_db

_slow = settings(max_examples=25, deadline=None)


class TestPacingConfig:
    def test_unpaced_is_all_off(self):
        assert not UNPACED.any_enabled
        assert UNPACED.enabled == ()
        assert str(UNPACED) == "none"

    def test_full_is_all_on(self):
        assert FULL.enabled == FEATURES
        assert str(FULL) == "pace+holddown+damp"

    def test_enabled_order_is_canonical(self):
        cfg = PacingConfig(damp=True, pace=True)
        assert cfg.enabled == ("pace", "damp")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_advert_interval=0.0),
            dict(holddown_time=-1.0),
            dict(penalty=0.0),
            dict(half_life=0.0),
            dict(reuse_threshold=3.0, suppress_threshold=3.0),
            dict(reuse_threshold=0.0),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PacingConfig(**kwargs)


class TestPacingFrom:
    @pytest.mark.parametrize("value", [None, "none", "off", ""])
    def test_off_spellings(self, value):
        assert pacing_from(value) == UNPACED

    @pytest.mark.parametrize("value", ["all", "full"])
    def test_all_spellings(self, value):
        assert pacing_from(value) == FULL

    def test_single_feature(self):
        assert pacing_from("damp") == PacingConfig(damp=True)

    @pytest.mark.parametrize("value", ["pace+damp", "pace,damp"])
    def test_combinations(self, value):
        assert pacing_from(value) == PacingConfig(pace=True, damp=True)

    def test_iterable(self):
        assert pacing_from(["holddown"]) == PacingConfig(holddown=True)

    def test_config_passthrough(self):
        cfg = PacingConfig(pace=True, min_advert_interval=3.0)
        assert pacing_from(cfg) is cfg

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown pacing"):
            pacing_from("pace+jitter")


class TestRegistryPlumbing:
    def test_default_is_unpaced(self):
        g = line_graph(3)
        proto = make_protocol("ls-hbh", g, open_db(g))
        assert proto.pacing == UNPACED

    def test_pacing_option_reaches_every_node(self):
        g = line_graph(3)
        proto = make_protocol("ls-hbh", g, open_db(g), pacing="all")
        assert proto.pacing == FULL
        network = proto.build()
        assert all(node.pacing == FULL for node in network.nodes.values())

    def test_egp_custom_build_distributes_too(self):
        g = line_graph(3)
        proto = make_protocol("egp", g, open_db(g), pacing="pace")
        network = proto.build()
        assert all(
            node.pacing == PacingConfig(pace=True)
            for node in network.nodes.values()
        )


class TestFlapDamper:
    def test_penalty_accumulates_to_suppression(self):
        damper = FlapDamper(FULL)
        assert not damper.record_flap("k", 0.0)
        assert not damper.record_flap("k", 0.0)
        assert damper.record_flap("k", 0.0)  # 3.0 crosses the threshold
        assert damper.flaps == 3
        assert damper.suppressions == 1
        assert damper.is_suppressed("k", 0.0)
        assert damper.suppressed_keys(0.0) == ("k",)

    def test_penalty_halves_every_half_life(self):
        damper = FlapDamper(FULL)
        damper.record_flap("k", 0.0)
        assert damper.penalty_of("k", FULL.half_life) == pytest.approx(0.5)
        assert damper.penalty_of("k", 2 * FULL.half_life) == pytest.approx(0.25)

    def test_decay_lifts_suppression(self):
        damper = FlapDamper(FULL)
        for _ in range(3):
            damper.record_flap("k", 0.0)
        lift = damper.reuse_delay("k", 0.0)
        assert lift > 0
        assert damper.is_suppressed("k", lift - 1.0)
        assert not damper.is_suppressed("k", lift + 1e-6)

    def test_reuse_delay_zero_below_threshold(self):
        damper = FlapDamper(FULL)
        damper.record_flap("k", 0.0)  # 1.0 == reuse threshold
        assert damper.reuse_delay("k", 0.0) == 0.0
        assert damper.penalty_of("missing", 0.0) == 0.0
        assert not damper.is_suppressed("missing", 0.0)


def _tables(proto):
    return {i: dict(n.table) for i, n in proto.network.nodes.items()}


class TestDefensesEndToEnd:
    def test_pacing_preserves_the_converged_outcome(self):
        g = line_graph(4)
        plain = make_protocol("egp", g, open_db(g))
        plain.converge()
        paced = make_protocol("egp", line_graph(4), open_db(g), pacing="all")
        paced.converge()
        assert _tables(plain) == _tables(paced)

    def test_pace_defers_update_bursts(self):
        g = line_graph(4)
        proto = make_protocol("egp", g, open_db(g), pacing="pace")
        proto.converge()
        network = proto.network
        # A flap right after convergence triggers flushes well inside
        # the minimum advertisement interval of the initial ones.
        proto.apply_link_status(0, 1, False)
        proto.apply_link_status(0, 1, True)
        network.run()
        assert sum(n.paced_deferrals for n in network.nodes.values()) > 0

    def test_holddown_delays_bad_news(self):
        g = line_graph(3)
        proto = make_protocol("naive-dv", g, open_db(g), pacing="holddown")
        proto.converge()
        network = proto.network
        t0 = network.sim.now
        proto.apply_link_status(1, 2, False)
        network.run(until=t0 + UNPACED.holddown_time / 2)
        # AD 1 is sitting on the bad news; AD 0 still routes via it.
        assert network.node(0).route_to(2) == 1
        network.run()
        assert network.node(0).route_to(2) is None

    def test_damping_suppresses_a_flapping_route_then_restores_it(self):
        g = line_graph(3)
        proto = make_protocol("naive-dv", g, open_db(g), pacing="damp")
        proto.converge()
        network = proto.network
        for _ in range(4):  # repeated losses cross the suppress threshold
            proto.apply_link_status(1, 2, False)
            network.run(until=network.sim.now + 5.0)
            proto.apply_link_status(1, 2, True)
            network.run(until=network.sim.now + 5.0)
        node1 = network.node(1)
        assert node1._damper is not None
        assert node1._damper.suppressions >= 1
        assert node1.suppressed_announcements > 0
        # While suppressed, AD 0 has no route even though the link is up.
        assert network.node(0).route_to(2) is None
        # Decay lifts the suppression and the route is re-advertised.
        network.run()
        assert network.node(0).route_to(2) == 1


class _Clocked(OverloadDefenseMixin):
    """Minimal host for the mixin: a clock and a scheduler stub."""

    def __init__(self, pacing):
        self.now = 0.0
        self.pacing = pacing
        self.scheduled = []

    def schedule(self, delay, fn, *args):
        self.scheduled.append((self.now + delay, fn, args))


class TestHypothesisInvariants:
    @_slow
    @given(
        flaps=st.integers(min_value=1, max_value=8),
        gaps=st.lists(
            st.floats(min_value=0.01, max_value=500.0),
            min_size=2,
            max_size=10,
        ),
    )
    def test_penalty_decay_is_monotone(self, flaps, gaps):
        # Once flapping stops, the figure-of-merit only ever decreases.
        damper = FlapDamper(FULL)
        now = 0.0
        for _ in range(flaps):
            damper.record_flap("k", now)
            now += 1.0
        values = []
        for gap in gaps:
            now += gap
            values.append(damper.penalty_of("k", now))
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    @_slow
    @given(
        flaps=st.integers(min_value=4, max_value=12),
        gap=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_suppression_is_eventually_lifted(self, flaps, gap):
        # Closely-spaced flaps always suppress, and the suppression is
        # always lifted once flapping stops: within reuse_delay the key
        # decays below the reuse threshold.
        damper = FlapDamper(FULL)
        now = 0.0
        for _ in range(flaps):
            damper.record_flap("k", now)
            now += gap
        assert damper.is_suppressed("k", now)
        lift = damper.reuse_delay("k", now)
        assert lift > 0
        assert not damper.is_suppressed("k", now + lift + 1e-6)

    @_slow
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=20,
        )
    )
    def test_pacing_never_reorders_same_neighbour_batches(self, times):
        # Deferral pushes a batch later, never earlier: accepted flush
        # times are strictly ordered and at least one advertisement
        # interval apart, so a neighbour can never observe update batch
        # N+1 before batch N.
        node = _Clocked(PacingConfig(pace=True))
        sent = []
        for t in sorted(times):
            node.now = max(node.now, t)
            wait = node._pacing_defers_flush()
            if wait is not None:
                assert wait > 0
                node.now += wait  # the rescheduled flush fires
                wait = node._pacing_defers_flush()
                assert wait is None
            sent.append(node.now)
        assert sent == sorted(sent)
        assert all(
            b - a >= node.pacing.min_advert_interval - 1e-9
            for a, b in zip(sent, sent[1:])
        )

    @_slow
    @given(repenalties=st.integers(min_value=0, max_value=4))
    def test_reuse_checks_never_busy_loop(self, repenalties):
        # A key re-penalized while suppressed re-arms its check with at
        # least the tick floor, never a zero-delay self-spin.
        node = _Clocked(FULL)
        for _ in range(3):
            node._damp_loss("k")
        for _ in range(repenalties):
            node._damp_loss("k")
        assert all(t - node.now >= REUSE_TICK_MIN for t, _, _ in node.scheduled)
