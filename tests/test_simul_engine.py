"""Tests for the discrete-event engine."""

import pytest

from repro.simul.engine import SimulationLimitError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(9.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]
        assert sim.now == 3.0

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)


class TestRun:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(10.0, log.append, "b")
        sim.run(until=5.0)
        assert log == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert log == ["a", "b"]

    def test_run_until_advances_clock_when_queue_drains_early(self):
        # The early-break branch (next event beyond the horizon) leaves
        # now == until; the drained-queue branch must agree.
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.run(until=5.0)
        assert log == ["a"]
        assert sim.now == 5.0
        # An already-empty queue also advances to the horizon.
        sim.run(until=9.0)
        assert sim.now == 9.0
        # A horizon in the past never moves the clock backward.
        sim.run(until=2.0)
        assert sim.now == 9.0
        # And scheduling relative to the advanced clock works as usual.
        sim.schedule(1.0, log.append, "b")
        sim.run()
        assert log == ["a", "b"]
        assert sim.now == 10.0

    def test_event_budget_enforced(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationLimitError):
            sim.run(max_events=100)

    def test_cancellation(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, log.append, "x")
        handle.cancel()
        assert handle.cancelled
        processed = sim.run()
        assert log == []
        assert processed == 0

    def test_run_returns_processed_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 5
        assert sim.events_processed == 5


class TestCancellationSemantics:
    """Pin the budget/cancellation contract: cancelled events are popped
    and skipped without counting toward any budget or counter."""

    def test_cancelled_events_do_not_count_toward_budget(self):
        sim = Simulator()
        log = []
        for _ in range(10):
            sim.schedule(1.0, log.append, "dead").cancel()
        sim.schedule(2.0, log.append, "live")
        # Budget of one: the ten cancelled events ahead of the live one
        # must be skipped for free, not starve it.
        processed = sim.run(max_events=1)
        assert log == ["live"]
        assert processed == 1
        assert sim.events_processed == 1
        assert not sim.hit_event_limit

    def test_trailing_cancelled_events_do_not_trip_the_limit(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        for _ in range(5):
            sim.schedule(2.0, lambda: None).cancel()
        # The budget is exactly consumed by the live event; the cancelled
        # tail drains without raising or setting hit_event_limit.
        processed = sim.run(max_events=1)
        assert log == ["a"]
        assert processed == 1
        assert not sim.hit_event_limit
        assert sim.pending == 0

    def test_live_event_beyond_budget_sets_limit(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(max_events=1, raise_on_limit=False)
        assert sim.hit_event_limit
        assert sim.pending == 1  # the over-budget event is still queued

    def test_pending_includes_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_cancelled_events_still_advance_the_clock(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None).cancel()
        sim.run()
        assert sim.now == 5.0
