"""Tests for the design-space enumeration (Table 1 structure)."""

from repro.core.design_space import (
    Algorithm,
    DecisionLocation,
    DesignPoint,
    LS_SRC_TERMS,
    PAPER_VERDICTS,
    PolicyExpression,
    enumerate_design_space,
    verdict_for,
)


class TestEnumeration:
    def test_eight_distinct_points(self):
        points = enumerate_design_space()
        assert len(points) == 8
        assert len(set(points)) == 8

    def test_covers_full_cross_product(self):
        points = set(enumerate_design_space())
        expected = {
            DesignPoint(a, loc, e)
            for a in Algorithm
            for loc in DecisionLocation
            for e in PolicyExpression
        }
        assert points == expected

    def test_section5_walk_order(self):
        """Section 5 changes one axis at a time; the first four points
        must follow that walk."""
        first_four = enumerate_design_space()[:4]
        labels = [p.label for p in first_four]
        assert labels == ["DV/HbH/Topo", "DV/HbH/PT", "LS/HbH/PT", "LS/Src/PT"]
        for a, b in zip(first_four, first_four[1:]):
            differing = sum(
                [
                    a.algorithm != b.algorithm,
                    a.location != b.location,
                    a.expression != b.expression,
                ]
            )
            assert differing == 1


class TestVerdicts:
    def test_every_point_has_a_verdict(self):
        for point in enumerate_design_space():
            verdict = verdict_for(point)
            assert verdict.summary
            assert verdict.section.startswith("5")

    def test_exactly_one_recommended(self):
        recommended = [p for p in PAPER_VERDICTS if PAPER_VERDICTS[p].recommended]
        assert recommended == [LS_SRC_TERMS]

    def test_four_dismissed(self):
        dismissed = [p for p in PAPER_VERDICTS if PAPER_VERDICTS[p].dismissed]
        assert len(dismissed) == 4
        for p in dismissed:
            assert not PAPER_VERDICTS[p].recommended

    def test_labels_stable(self):
        p = DesignPoint(
            Algorithm.LINK_STATE, DecisionLocation.SOURCE, PolicyExpression.TERMS
        )
        assert p.label == "LS/Src/PT"
        assert p == LS_SRC_TERMS
