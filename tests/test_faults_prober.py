"""Tests for RoutePulse, the data-plane reachability sampler."""

import pytest

from repro.faults.prober import FlowOutage, ProbeSample, RoutePulse
from repro.policy.flows import FlowSpec
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from tests.helpers import mk_graph, open_db


def ring4():
    return mk_graph(
        [(0, "Rt"), (1, "Rt"), (2, "Rt"), (3, "Rt")],
        [(0, 1), (1, 2), (2, 3), (0, 3)],
    )


def converged_proto():
    g = ring4()
    proto = LinkStateHopByHopProtocol(g, open_db(g))
    proto.converge()
    return proto


class TestClassification:
    def test_converged_flow_is_ok(self):
        proto = converged_proto()
        pulse = RoutePulse(proto, [FlowSpec(0, 2)])
        assert pulse._classify(FlowSpec(0, 2)) == "ok"

    def test_crashed_destination_is_blackhole(self):
        proto = converged_proto()
        proto.crash_node(2, retain_state=True)
        pulse = RoutePulse(proto, [])
        assert pulse._classify(FlowSpec(0, 2)) == "blackhole"

    def test_crashed_source_yields_no_sample(self):
        # A crashed source is not a vantage point: there is nobody to
        # originate the probe, so the round records nothing rather than
        # charging the protocol with a blackhole it cannot fix.
        proto = converged_proto()
        proto.crash_node(2, retain_state=True)
        pulse = RoutePulse(proto, [])
        assert pulse._classify(FlowSpec(2, 0)) is None

    def test_unroutable_flow_is_blackhole(self):
        from repro.policy.database import PolicyDatabase

        g = ring4()
        proto = LinkStateHopByHopProtocol(g, PolicyDatabase())
        proto.converge()
        # No AD offers transit: multi-hop flows have no legal route.
        pulse = RoutePulse(proto, [])
        assert pulse._classify(FlowSpec(0, 2)) == "blackhole"

    def test_stale_route_detected(self):
        proto = converged_proto()
        pulse = RoutePulse(proto, [])
        # Ground truth changes behind the protocol's back: the believed
        # route (0, 1, 2) now crosses a dead link.
        proto.graph.set_link_status(1, 2, False)
        assert pulse._classify(FlowSpec(0, 2)) == "stale"

    def test_crashed_transit_makes_route_stale(self):
        proto = converged_proto()
        pulse = RoutePulse(proto, [])
        # Silence AD 1 without tearing its links down: the protocol still
        # believes in (0, 1, 2) but the hop is dead.
        proto.network.crash_node(1)
        assert pulse._classify(FlowSpec(0, 2)) == "stale"


def leaky_proto():
    """Backbone 0 between stubs 3 and 4; its registered term refuses
    source 3, then it leaks.  Flow 3->4 gains an illegal route through
    the liar; flow 4->3 always legitimately crossed it."""
    from repro.policy.database import PolicyDatabase
    from repro.policy.sets import ADSet
    from repro.policy.terms import PolicyTerm

    g = mk_graph([(0, "Bt"), (3, "Cs"), (4, "Cs")], [(0, 3), (0, 4)])
    db = PolicyDatabase([PolicyTerm(owner=0, sources=ADSet.excluding([3]))])
    proto = LinkStateHopByHopProtocol(g, db)
    proto.converge()
    return proto


class TestHijackClassification:
    def test_new_suspect_transit_is_hijacked(self):
        proto = leaky_proto()
        flow = FlowSpec(3, 4)
        reference = {flow: proto.find_route(flow)}  # None: no legal route
        assert proto.start_misbehavior(0, "route-leak")
        proto.network.run()
        pulse = RoutePulse(proto, [flow], reference_routes=reference)
        assert pulse._classify(flow) == "hijacked"

    def test_preexisting_transit_is_not_hijacked(self):
        proto = leaky_proto()
        flow = FlowSpec(4, 3)
        reference = {flow: proto.find_route(flow)}
        assert reference[flow] == (4, 0, 3)
        assert proto.start_misbehavior(0, "route-leak")
        proto.network.run()
        # The flow always routed through the future liar: its route is
        # what it was, not a hijack.
        pulse = RoutePulse(proto, [flow], reference_routes=reference)
        assert pulse._classify(flow) == "ok"

    def test_no_reference_disables_detection(self):
        proto = leaky_proto()
        flow = FlowSpec(3, 4)
        assert proto.start_misbehavior(0, "route-leak")
        proto.network.run()
        pulse = RoutePulse(proto, [flow])
        assert pulse._classify(flow) == "ok"

    def test_no_suspects_means_no_hijack(self):
        proto = leaky_proto()
        flow = FlowSpec(4, 3)
        pulse = RoutePulse(
            proto, [flow], reference_routes={flow: proto.find_route(flow)}
        )
        assert pulse._classify(flow) == "ok"


class TestRun:
    def test_samples_taken_every_interval(self):
        proto = converged_proto()
        flows = [FlowSpec(0, 2), FlowSpec(1, 3)]
        pulse = RoutePulse(proto, flows, interval=10.0)
        t0 = proto.network.sim.now
        assert pulse.run(t0 + 50.0)
        assert len(pulse.samples) == 5 * len(flows)
        assert all(s.ok for s in pulse.samples)
        assert proto.network.sim.now == t0 + 50.0

    def test_probes_see_mid_churn_state(self):
        proto = converged_proto()
        pulse = RoutePulse(proto, [FlowSpec(0, 2)], interval=10.0)
        # Fail (0, 1) mid-window; the ring reroutes via 3 after repair.
        proto.network.sim.schedule(
            15.0, proto.apply_link_status, 0, 1, False
        )
        t0 = proto.network.sim.now
        assert pulse.run(t0 + 50.0)
        assert pulse.samples[0].ok  # before the failure
        assert all(s.ok for s in pulse.samples[2:])  # rerouted via AD 3

    def test_interval_must_be_positive(self):
        proto = converged_proto()
        with pytest.raises(ValueError):
            RoutePulse(proto, [], interval=0.0)

    def test_event_budget_reported(self):
        proto = converged_proto()
        # Make the control plane busy, then run with a 1-event budget.
        proto.network.sim.schedule(
            5.0, proto.apply_link_status, 0, 1, False
        )
        pulse = RoutePulse(proto, [FlowSpec(0, 2)], interval=10.0)
        assert pulse.run(proto.network.sim.now + 50.0, max_events=1) is False


class _StubPulse(RoutePulse):
    """A pulse with hand-authored samples (analysis-only tests)."""

    def __init__(self, samples):
        self.protocol = None
        self.flows = [FlowSpec(0, 1)]
        self.interval = 10.0
        self.samples = list(samples)
        self.events_processed = 0


class TestOutageAnalysis:
    def test_outage_segmentation(self):
        pulse = _StubPulse(
            [
                ProbeSample(0.0, 0, "ok"),
                ProbeSample(10.0, 0, "stale"),
                ProbeSample(20.0, 0, "blackhole"),
                ProbeSample(30.0, 0, "ok"),
                ProbeSample(40.0, 0, "loop"),
            ]
        )
        outages = pulse.outages()
        assert outages == [
            FlowOutage(0, 10.0, 30.0, 2),
            FlowOutage(0, 40.0, None, 1),
        ]
        assert outages[0].repaired and outages[0].duration == 20.0
        assert not outages[1].repaired and outages[1].duration is None

    def test_outages_are_per_flow(self):
        pulse = _StubPulse(
            [
                ProbeSample(0.0, 0, "stale"),
                ProbeSample(0.0, 1, "ok"),
                ProbeSample(10.0, 0, "ok"),
                ProbeSample(10.0, 1, "stale"),
            ]
        )
        outages = pulse.outages()
        assert [(o.flow_index, o.repaired) for o in outages] == [
            (0, True),
            (1, False),
        ]

    def test_summary_rollup(self):
        pulse = _StubPulse(
            [
                ProbeSample(0.0, 0, "ok"),
                ProbeSample(10.0, 0, "stale"),
                ProbeSample(20.0, 0, "ok"),
                ProbeSample(30.0, 0, "ok"),
            ]
        )
        summary = pulse.summary()
        assert summary["samples"] == 4
        assert summary["availability"] == 0.75
        assert summary["counts"]["stale"] == 1
        assert summary["outages"] == 1
        assert summary["outages_repaired"] == 1
        assert summary["outages_unrepaired"] == 0
        assert summary["mean_ttr"] == 10.0
        assert summary["max_ttr"] == 10.0

    def test_empty_summary(self):
        summary = _StubPulse([]).summary()
        assert summary["samples"] == 0
        assert summary["availability"] == 1.0
        assert summary["outages"] == 0
