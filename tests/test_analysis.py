"""Tests for tables and statistics helpers."""

import pytest

from repro.analysis.stats import percentile, summarize
from repro.analysis.tables import Table


class TestTable:
    def test_render_alignment(self):
        t = Table("name", "value", title="demo")
        t.add("alpha", 1)
        t.add("b", 22)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # Columns align: every row has the same prefix width.
        assert lines[3].index("1") == lines[4].index("2")

    def test_row_arity_checked(self):
        t = Table("a", "b")
        with pytest.raises(ValueError):
            t.add(1)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table()

    def test_values_stringified(self):
        t = Table("x")
        t.add(3.14159)
        assert "3.14159" in t.render()


class TestStats:
    def test_summary_of_constant(self):
        s = summarize([5, 5, 5])
        assert s.mean == 5 and s.stdev == 0
        assert s.minimum == s.maximum == s.p50 == 5

    def test_summary_basic(self):
        s = summarize(range(1, 101))
        assert s.n == 100
        assert s.mean == pytest.approx(50.5)
        assert s.p50 == pytest.approx(50.5)
        assert s.p95 == pytest.approx(95.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_bounds(self):
        data = [1.0, 2.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 3.0
        assert percentile(data, 0.5) == 2.0
        with pytest.raises(ValueError):
            percentile(data, 1.5)
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_single_value(self):
        assert percentile([7.0], 0.3) == 7.0
        s = summarize([7.0])
        assert s.stdev == 0.0
