"""Tests for the administrator tools (impact analysis, audit)."""

import pytest

from repro.mgmt.audit import connectivity_audit
from repro.mgmt.impact import PolicyChange, PolicyImpactAnalyzer
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import hierarchical_policies, restricted_policies
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from tests.helpers import diamond_graph, line_graph, open_db


class TestPolicyChange:
    def test_owner_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PolicyChange(owner=1, new_terms=(PolicyTerm(owner=2),))

    def test_replace_with_infers_owner(self):
        change = PolicyChange.replace_with(PolicyTerm(owner=3), PolicyTerm(owner=3))
        assert change.owner == 3
        with pytest.raises(ValueError):
            PolicyChange.replace_with(PolicyTerm(owner=3), PolicyTerm(owner=4))
        with pytest.raises(ValueError):
            PolicyChange.replace_with()

    def test_withdraw_all(self):
        change = PolicyChange.withdraw_all(5)
        assert change.new_terms == ()


class TestImpactAnalyzer:
    def test_withdrawal_strands_dependent_flows(self):
        g = line_graph(4)
        analyzer = PolicyImpactAnalyzer(
            g, open_db(g), flows=[FlowSpec(0, 3), FlowSpec(0, 1)]
        )
        report = analyzer.assess_withdrawal(1)
        assert report.before_available == 2
        assert report.after_available == 1  # the direct-neighbour flow survives
        assert report.flows_lost == [FlowSpec(0, 3)]
        assert report.availability_delta == -1
        assert report.transit_before == 1 and report.transit_after == 0

    def test_live_database_untouched(self):
        g = line_graph(4)
        db = open_db(g)
        v = db.version
        PolicyImpactAnalyzer(g, db, flows=[FlowSpec(0, 3)]).assess_withdrawal(1)
        assert db.version == v
        assert db.terms_of(1)

    def test_reroute_detected(self):
        g = diamond_graph()
        analyzer = PolicyImpactAnalyzer(g, open_db(g), flows=[FlowSpec(0, 3)])
        # Narrow AD 1 (the cheap transit) to an unrelated source set.
        change = PolicyChange.replace_with(
            PolicyTerm(owner=1, sources=ADSet.of([99]))
        )
        report = analyzer.assess(change)
        assert report.flows_lost == []
        assert report.rerouted == [FlowSpec(0, 3)]
        assert report.transit_before == 1 and report.transit_after == 0

    def test_gained_connectivity(self):
        g = line_graph(4)
        db = PolicyDatabase([PolicyTerm(owner=2)])  # AD 1 offers nothing
        analyzer = PolicyImpactAnalyzer(g, db, flows=[FlowSpec(0, 3)])
        report = analyzer.assess(PolicyChange.replace_with(PolicyTerm(owner=1)))
        assert report.flows_gained == [FlowSpec(0, 3)]
        assert report.availability_delta == 1

    def test_summary_mentions_damage(self):
        g = line_graph(4)
        analyzer = PolicyImpactAnalyzer(g, open_db(g), flows=[FlowSpec(0, 3)])
        text = analyzer.assess_withdrawal(1).summary()
        assert "LOST connectivity" in text
        assert "AD 1" in text

    def test_rank_critical_transits(self, hierarchy):
        db = hierarchical_policies(hierarchy).policies
        flows = [FlowSpec(3, 5), FlowSpec(4, 6), FlowSpec(3, 4)]
        analyzer = PolicyImpactAnalyzer(hierarchy, db, flows=flows)
        ranking = analyzer.rank_critical_transits(top=3)
        assert ranking
        # Both regionals sit on every sampled path (the 1-2 lateral beats
        # the backbone detour), so each strands at least two flows; the
        # backbone, bypassed by the lateral, strands none.
        assert ranking[0][0] in {1, 2}
        assert ranking[0][1] >= 2
        assert (0, 0) in ranking

    def test_sampled_flows_default(self, gen_graph, gen_policies):
        analyzer = PolicyImpactAnalyzer(gen_graph, gen_policies, num_flows=10)
        assert len(analyzer.flows) == 10


class TestConnectivityAudit:
    def test_open_policies_have_full_connectivity(self, gen_graph):
        from repro.core.evaluation import sample_flows

        db = open_db(gen_graph)
        flows = sample_flows(gen_graph, 20, seed=1)
        audit = connectivity_audit(gen_graph, db, flows)
        assert audit.policy_blocked == 0
        assert audit.connectivity_ratio == 1.0

    def test_blocked_flow_names_culprit(self):
        g = line_graph(4)
        db = PolicyDatabase([PolicyTerm(owner=1)])  # AD 2 blocks
        audit = connectivity_audit(g, db, [FlowSpec(0, 3)])
        assert audit.policy_blocked == 1
        finding = audit.findings[0]
        assert finding.culprit == 2
        assert finding.open_route == (0, 1, 2, 3)
        assert audit.blockers() == [(2, 1)]

    def test_ratio_and_summary(self, gen_graph):
        from repro.core.evaluation import sample_flows

        db = restricted_policies(gen_graph, 0.6, seed=3).policies
        flows = sample_flows(gen_graph, 30, seed=2)
        audit = connectivity_audit(gen_graph, db, flows)
        assert 0.0 <= audit.connectivity_ratio <= 1.0
        text = audit.summary()
        assert "policy-blocked" in text

    def test_physically_unroutable_not_counted(self):
        g = line_graph(3)
        g.set_link_status(0, 1, up=False)
        audit = connectivity_audit(g, open_db(g), [FlowSpec(0, 2)])
        assert audit.physically_routable == 0
        assert audit.connectivity_ratio == 1.0
