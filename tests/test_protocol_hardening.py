"""Tests for the hardening toggles: config parsing, registry plumbing,
wire-size compatibility, and the per-protocol mechanisms."""

import pytest

from repro.faults.channel import ChannelModel, ImpairedChannel, Impairment
from repro.policy.flows import FlowSpec
from repro.protocols.egp import NRAck, NRUpdate
from repro.protocols.flooding import ExchangeAck, LSDBExchange
from repro.protocols.hardening import (
    FEATURES,
    HARDENED,
    SOFT,
    HardeningConfig,
    hardening_from,
)
from repro.protocols.registry import make_protocol
from tests.helpers import line_graph, mk_graph, open_db


def ring4():
    return mk_graph(
        [(0, "Rt"), (1, "Rt"), (2, "Rt"), (3, "Rt")],
        [(0, 1), (1, 2), (2, 3), (0, 3)],
    )


class ScriptedChannel(ChannelModel):
    """Deterministic per-transmission script: drop/duplicate by index."""

    def __init__(self, drop=(), dup=()):
        self.n = 0
        self.drop = set(drop)
        self.dup = set(dup)

    def transmit(self, src, dst):
        i = self.n
        self.n += 1
        if i in self.drop:
            return ()
        if i in self.dup:
            return (0.0, 0.0)
        return (0.0,)


class TestHardeningConfig:
    def test_soft_is_all_off(self):
        assert not SOFT.any_enabled
        assert SOFT.enabled == ()
        assert str(SOFT) == "none"

    def test_hardened_is_all_on(self):
        assert HARDENED.enabled == FEATURES
        assert str(HARDENED) == "dedup+retransmit+refresh"

    def test_enabled_order_is_canonical(self):
        cfg = HardeningConfig(refresh=True, dedup=True)
        assert cfg.enabled == ("dedup", "refresh")


class TestHardeningFrom:
    @pytest.mark.parametrize("value", [None, "none", ""])
    def test_off_spellings(self, value):
        assert hardening_from(value) == SOFT

    def test_all(self):
        assert hardening_from("all") == HARDENED

    def test_single_feature(self):
        assert hardening_from("dedup") == HardeningConfig(dedup=True)

    @pytest.mark.parametrize("value", ["dedup+refresh", "dedup,refresh"])
    def test_combinations(self, value):
        assert hardening_from(value) == HardeningConfig(dedup=True, refresh=True)

    def test_iterable(self):
        assert hardening_from(["retransmit"]) == HardeningConfig(retransmit=True)

    def test_config_passthrough(self):
        cfg = HardeningConfig(dedup=True, max_retries=7)
        assert hardening_from(cfg) is cfg

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown hardening"):
            hardening_from("dedup+fec")


class TestRegistryPlumbing:
    def test_default_is_soft(self):
        g = ring4()
        proto = make_protocol("ls-hbh", g, open_db(g))
        assert proto.hardening == SOFT

    def test_hardening_option_reaches_every_node(self):
        g = ring4()
        proto = make_protocol("ls-hbh", g, open_db(g), hardening="all")
        assert proto.hardening == HARDENED
        network = proto.build()
        assert all(
            node.hardening == HARDENED for node in network.nodes.values()
        )

    def test_egp_custom_build_distributes_too(self):
        g = line_graph(3)
        proto = make_protocol("egp", g, open_db(g), hardening="dedup")
        network = proto.build()
        assert all(
            node.hardening == HardeningConfig(dedup=True)
            for node in network.nodes.values()
        )


class TestWireCompatibility:
    def test_unhardened_messages_keep_legacy_sizes(self):
        # The seq/token field costs four bytes only when carried, so
        # unhardened runs stay byte-identical to the pre-faults protocol.
        assert NRUpdate((1, 2)).size_bytes() + 4 == NRUpdate((1, 2), seq=9).size_bytes()
        plain = LSDBExchange(())
        assert plain.size_bytes() + 4 == LSDBExchange((), token=3).size_bytes()

    def test_ack_sizes(self):
        assert NRAck(1).size_bytes() > 0
        assert ExchangeAck(1).size_bytes() > 0


class TestEGPHardening:
    def _converged(self, hardening):
        g = line_graph(3)
        proto = make_protocol("egp", g, open_db(g), hardening=hardening)
        proto.converge()
        return proto

    def test_dedup_suppresses_replayed_updates(self):
        proto = self._converged("dedup")
        node = proto.network.node(1)
        table_before = dict(node.table)
        msg = NRUpdate((9,), seq=77)
        node.on_message(0, msg)
        node.on_message(0, msg)  # exact replay
        proto.network.run()
        assert node.duplicates_ignored == 1
        assert 9 in node.table
        assert proto.duplicates_ignored() >= 1
        del node.table[9]
        assert node.table == table_before

    def test_retransmit_recovers_a_lost_update(self):
        g = line_graph(2)
        proto = make_protocol("egp", g, open_db(g), hardening="retransmit")
        network = proto.build()
        # Drop the very first transmission (node 0's initial update).
        network.set_channel(ScriptedChannel(drop={0}))
        proto.converge()
        assert proto.network.node(1).table.get(0) == 0
        # The retransmission was acked, so nothing stays queued.
        for node in network.nodes.values():
            assert node._unacked == {}

    def test_retransmit_gives_up_under_total_loss(self):
        g = line_graph(2)
        proto = make_protocol("egp", g, open_db(g), hardening="retransmit")
        network = proto.build()
        network.set_channel(
            ImpairedChannel(default=Impairment(drop_prob=1.0), seed=0)
        )
        result = proto.converge()
        assert result.quiesced  # bounded retries: the run still drains
        for node in network.nodes.values():
            assert node._unacked == {}

    def test_unhardened_updates_carry_no_seq(self):
        proto = self._converged(None)
        assert proto.network.node(1).table.get(0) == 0
        assert all(n._update_seq == 0 for n in proto.network.nodes.values())


class TestLSHardening:
    def test_refresh_burst_reoriginates(self):
        g = ring4()
        proto = make_protocol("ls-hbh", g, open_db(g), hardening="refresh")
        proto.converge()
        # Initial origination plus the bounded refresh burst.
        expected = 1 + proto.hardening.refresh_count
        assert all(
            node._seq == expected for node in proto.network.nodes.values()
        )

    def test_no_refresh_without_hardening(self):
        g = ring4()
        proto = make_protocol("ls-hbh", g, open_db(g))
        proto.converge()
        assert all(node._seq == 1 for node in proto.network.nodes.values())

    def test_refresh_heals_a_lost_flood(self):
        g = ring4()
        proto = make_protocol("ls-hbh", g, open_db(g), hardening="refresh")
        network = proto.build()
        # Lose the first several floods; the refresh burst re-floods.
        network.set_channel(ScriptedChannel(drop=set(range(4))))
        proto.converge()
        for node in network.nodes.values():
            assert set(node.lsdb) == {0, 1, 2, 3}

    def test_exchange_retransmit_tracks_acks(self):
        g = ring4()
        proto = make_protocol("ls-hbh", g, open_db(g), hardening="retransmit")
        proto.converge()
        proto.apply_link_status(0, 1, False)
        proto.network.run()
        proto.apply_link_status(0, 1, True)
        proto.network.run()
        # The link-up DB exchanges were tokened, acked, and cleared.
        for node in proto.network.nodes.values():
            assert node._pending_exchanges == {}


class TestORWGHardening:
    def _proto(self, hardening, channel=None):
        g = ring4()
        proto = make_protocol("orwg", g, open_db(g), hardening=hardening)
        network = proto.build()
        if channel is not None:
            network.set_channel(channel)
        proto.converge()
        return proto

    def test_setup_retransmit_recovers_a_lost_packet(self):
        proto = self._proto("retransmit")
        # Drop the next transmission: the setup packet leaving the source.
        channel = ScriptedChannel(drop={0})
        proto.network.set_channel(channel)
        attempt = proto.open_route(FlowSpec(0, 2))
        proto.network.run()
        assert attempt.established

    def test_setup_times_out_under_total_loss(self):
        proto = self._proto("retransmit")
        proto.network.set_channel(
            ImpairedChannel(default=Impairment(drop_prob=1.0), seed=0)
        )
        attempt = proto.open_route(FlowSpec(0, 2))
        proto.network.run()
        assert attempt.state == "failed"
        assert "timed out" in attempt.reason

    def test_unhardened_setup_wedges_on_loss(self):
        proto = self._proto(None)
        proto.network.set_channel(ScriptedChannel(drop={0}))
        attempt = proto.open_route(FlowSpec(0, 2))
        proto.network.run()
        assert attempt.state == "pending"  # lost forever, nobody retries

    def test_dedup_skips_revalidating_duplicate_setups(self):
        proto = self._proto("dedup+retransmit")
        # Duplicate the setup packet leaving the source: the transit AD
        # sees it twice and must forward, not revalidate, the replay.
        proto.network.set_channel(ScriptedChannel(dup={0}))
        attempt = proto.open_route(FlowSpec(0, 2))
        proto.network.run()
        assert attempt.established
        assert proto.duplicates_ignored() >= 1
