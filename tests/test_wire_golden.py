"""Golden-frame pinning: the wire encoding is a compatibility contract.

Version-skew tolerance only works if every build agrees, byte for byte,
on what each wire version looks like -- an accidental encoding change
would break live interop with every deployed node even though all
in-process tests still pass.  This module pins one representative frame
per registered message type, at every supported wire version, against
committed golden bytes (``tests/data/wire_golden.json``), and checks
decode/encode identity on each.

When an encoding change is *intentional* (a new wire version), regen
the goldens with::

    PYTHONPATH=src REGEN_WIRE_GOLDEN=1 python -m pytest tests/test_wire_golden.py

and review the diff like any other wire-compatibility decision.
"""

import json
import os

import pytest

from repro.adgraph.ad import Level
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.sets import ADSet, TimeWindow, _SetMode
from repro.policy.terms import PolicyTerm, TermRef
from repro.policy.uci import UCI
from repro.protocols.dv import DVUpdate
from repro.protocols.ecma import ECMAUpdate
from repro.protocols.egp import NRAck, NRUpdate
from repro.protocols.flooding import (
    ExchangeAck,
    LinkRecord,
    LinkStateAd,
    LSDBExchange,
)
from repro.protocols.idrp import IDRPUpdate, RouteAd
from repro.protocols.orwg.messages import (
    DataPacket,
    Handle,
    SetupAck,
    SetupNak,
    SetupPacket,
    TeardownPacket,
)
from repro.protocols.versioning import Hello
from repro.simul.wire import (
    MIN_WIRE_VERSION,
    WIRE_VERSION,
    _message_types,
    decode_frame,
    decode_frame_ex,
    encode_frame,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "wire_golden.json")

_HANDLE = Handle(src=3, local_id=41)
_FLOW = FlowSpec(src=3, dst=9, qos=QOS.LOW_DELAY, uci=UCI.RESEARCH, hour=8)
_SET = ADSet(_SetMode.INCLUDE, frozenset([2, 5]))
_TERM = PolicyTerm(
    owner=4,
    sources=_SET,
    dests=ADSet(_SetMode.ALL, frozenset()),
    qos_classes=frozenset([QOS.DEFAULT, QOS.LOW_DELAY]),
    ucis=frozenset([UCI.COMMERCIAL]),
    window=TimeWindow(start_hour=8, end_hour=18),
    charge=2.5,
    term_id=7,
)
_LSA = LinkStateAd(
    origin=4,
    seq=12,
    links=(
        LinkRecord(neighbor=2, delay=1.0, cost=3.0, up=True, bandwidth=2.0),
        LinkRecord(neighbor=9, delay=2.5, cost=1.0, up=False),
    ),
    terms=(_TERM,),
    origin_level=Level.REGIONAL,
)

#: One deterministic representative per registered message type.  A new
#: message type MUST gain an entry here (and regenerated goldens) before
#: it can cross a socket -- the vocabulary test below enforces that.
SAMPLES = {
    "DVUpdate": DVUpdate(entries=((7, 2), (9, 5)), poisons=(11,)),
    "DataPacket": DataPacket(
        handle=_HANDLE, flow=_FLOW, route=(3, 5, 9), hop=1, payload_bytes=512
    ),
    "ECMAUpdate": ECMAUpdate(
        entries=((7, QOS.DEFAULT, 4.0, 2, True),),
        poisons=((9, QOS.LOW_DELAY),),
    ),
    "ExchangeAck": ExchangeAck(token=77),
    "Hello": Hello(
        version=2,
        min_version=1,
        reply=False,
        capabilities=("graceful-restart", "resync"),
    ),
    "IDRPUpdate": IDRPUpdate(
        routes=(
            RouteAd(
                dest=9,
                qos=QOS.DEFAULT,
                path=(3, 5, 9),
                metric=4.5,
                allowed=_SET,
                cls=1,
            ),
        )
    ),
    "LSDBExchange": LSDBExchange(ads=(_LSA,), token=5),
    "LinkStateAd": _LSA,
    "NRAck": NRAck(seq=13),
    "NRUpdate": NRUpdate(dests=(2, 5, 9), seq=13),
    "SetupAck": SetupAck(handle=_HANDLE, route=(3, 5, 9), hop=2),
    "SetupNak": SetupNak(
        handle=_HANDLE, route=(3, 5, 9), hop=1, rejected_by=5, reason="policy"
    ),
    "SetupPacket": SetupPacket(
        handle=_HANDLE,
        flow=_FLOW,
        route=(3, 5, 9),
        term_refs=(TermRef(owner=4, term_id=7),),
        hop=0,
    ),
    "TeardownPacket": TeardownPacket(handle=_HANDLE, route=(3, 5, 9), hop=2),
}

VERSIONS = tuple(range(MIN_WIRE_VERSION, WIRE_VERSION + 1))


def _current_frames():
    return {
        name: {
            f"v{version}": encode_frame(1, 2, msg, version=version).hex()
            for version in VERSIONS
        }
        for name, msg in sorted(SAMPLES.items())
    }


def _golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def test_every_registered_type_has_a_sample():
    assert sorted(SAMPLES) == sorted(_message_types())


@pytest.mark.skipif(
    not os.environ.get("REGEN_WIRE_GOLDEN"), reason="regen is opt-in"
)
def test_regenerate_goldens():
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(_current_frames(), fh, indent=1, sort_keys=True)
        fh.write("\n")


def test_goldens_cover_every_sample_and_version():
    golden = _golden()
    assert sorted(golden) == sorted(SAMPLES)
    for name in golden:
        assert sorted(golden[name]) == sorted(f"v{v}" for v in VERSIONS)


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_encoding_matches_golden(name):
    golden = _golden()[name]
    for version in VERSIONS:
        frame = encode_frame(1, 2, SAMPLES[name], version=version)
        assert frame.hex() == golden[f"v{version}"], (
            f"{name} v{version} frame bytes changed -- this breaks live "
            "interop with deployed nodes; if intentional, bump the wire "
            "version and regen with REGEN_WIRE_GOLDEN=1"
        )


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_decode_encode_identity(name):
    msg = SAMPLES[name]
    for version in VERSIONS:
        frame = encode_frame(1, 2, msg, version=version)
        src, dst, decoded, got_version = decode_frame_ex(frame)
        assert (src, dst, got_version) == (1, 2, version)
        # Bytes are a fixed point: re-encoding what was decoded at the
        # same version reproduces the frame exactly.
        assert encode_frame(src, dst, decoded, version=version) == frame
        if version == WIRE_VERSION:
            # At the current version nothing is down-emitted away, so
            # the object itself survives unchanged too.
            assert decoded == msg


def test_v1_frames_have_no_version_envelope():
    frame = encode_frame(1, 2, SAMPLES["NRAck"], version=1)
    body = json.loads(frame[4:])
    assert set(body) == {"s", "d", "m"}
    assert set(body["m"]) == {"t", "f"}
    assert decode_frame(frame) == (1, 2, SAMPLES["NRAck"])


def test_v1_down_emit_drops_post_v1_fields():
    frame = encode_frame(1, 2, SAMPLES["Hello"], version=1)
    _, _, decoded, version = decode_frame_ex(frame)
    assert version == 1
    # ``capabilities`` was introduced at v2: the v1 frame omits it and
    # the decoder defaults it to empty.
    assert decoded.capabilities == ()
    assert (decoded.version, decoded.min_version) == (2, 1)
