"""Tests for metrics collection and snapshot deltas."""

from repro.simul.metrics import MetricsCollector


class TestCollector:
    def test_message_accounting(self):
        m = MetricsCollector()
        m.count_message("A", 100, time=5.0)
        m.count_message("A", 50, time=7.0)
        m.count_message("B", 10, time=6.0)
        assert m.messages["A"] == 2
        assert m.bytes["A"] == 150
        assert m.last_activity == 7.0

    def test_computations_by_ad(self):
        m = MetricsCollector()
        m.note_computation(1, "spf")
        m.note_computation(1, "spf", 2)
        m.note_computation(2, "spf")
        m.note_computation(1, "other")
        assert m.computations_by_ad("spf") == {1: 3, 2: 1}


class TestSnapshots:
    def test_snapshot_totals(self):
        m = MetricsCollector()
        m.count_message("A", 100, 1.0)
        m.count_drop()
        snap = m.snapshot(time=2.0)
        assert snap.total_messages == 1
        assert snap.total_bytes == 100
        assert snap.dropped == 1
        assert snap.time == 2.0

    def test_snapshot_is_immutable_copy(self):
        m = MetricsCollector()
        m.count_message("A", 1, 0.0)
        snap = m.snapshot(0.0)
        m.count_message("A", 1, 1.0)
        assert snap.messages["A"] == 1

    def test_delta(self):
        m = MetricsCollector()
        m.count_message("A", 100, 1.0)
        before = m.snapshot(1.0)
        m.count_message("A", 100, 2.0)
        m.count_message("B", 10, 3.0)
        m.note_computation(4, "x")
        after = m.snapshot(5.0)
        delta = after.delta(before)
        assert delta.messages == {"A": 1, "B": 1}
        assert delta.total_bytes == 110
        assert delta.time == 4.0
        assert delta.computations == {(4, "x"): 1}

    def test_delta_drops_zero_keys(self):
        m = MetricsCollector()
        m.count_message("A", 1, 0.0)
        before = m.snapshot(0.0)
        after = m.snapshot(1.0)
        assert after.delta(before).messages == {}

    def test_delta_of_identical_snapshots_is_empty(self):
        m = MetricsCollector()
        m.count_message("A", 5, 1.0)
        m.note_computation(0, "spf")
        m.count_drop()
        snap = m.snapshot(2.0)
        delta = snap.delta(snap)
        assert delta.total_messages == 0
        assert delta.total_bytes == 0
        assert delta.computations == {}
        assert delta.dropped == 0
        assert delta.time == 0.0

    def test_delta_keeps_keys_absent_in_earlier(self):
        m = MetricsCollector()
        before = m.snapshot(0.0)
        m.count_message("New", 7, 1.0)
        after = m.snapshot(1.0)
        delta = after.delta(before)
        assert delta.messages == {"New": 1}
        assert delta.bytes == {"New": 7}

    def test_delta_preserves_last_activity_of_later_snapshot(self):
        m = MetricsCollector()
        m.count_message("A", 1, 3.0)
        before = m.snapshot(5.0)
        m.count_message("A", 1, 9.0)
        after = m.snapshot(10.0)
        # Episode convergence time = last_activity - episode start.
        assert after.delta(before).last_activity == 9.0

    def test_delta_of_empty_collectors(self):
        a = MetricsCollector().snapshot(0.0)
        b = MetricsCollector().snapshot(4.0)
        delta = b.delta(a)
        assert delta.total_messages == 0
        assert delta.time == 4.0
        assert delta.total_computations == 0
