"""Equivalence of incremental SPF repair with the full-Dijkstra oracle.

:class:`~repro.protocols.spf.IncrementalSPFState` must produce exactly
the first-hop table :func:`~repro.protocols.spf.spf_next_hops` computes,
including tie-breaks, after *any* sequence of edge deltas -- link
deletions and metric increases (the classically buggy cases) included.
The suite drives random graphs through random delta batches and checks
the repaired state against both the oracle function and a from-scratch
state (which also pins the canonical dist/parent labelling itself).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.ad import AD, ADKind, InterADLink, Level, LinkKind
from repro.adgraph.graph import InterADGraph
from repro.protocols.spf import IncrementalSPFState, spf_next_hops

ROOT = 0

#: Weight pool chosen so different paths frequently collide exactly
#: (1.0 + 2.0 == 3.0 etc.), exercising every tie-break path.  0.0 is the
#: out-of-proof value that must trigger the full-recompute fallback.
WEIGHTS = [1.0, 2.0, 2.5, 3.0, 4.0]
WEIGHTS_WITH_ZERO = WEIGHTS + [0.0]


def build_graph(n, edges):
    graph = InterADGraph()
    for ad_id in range(n):
        graph.add_ad(AD(ad_id, f"ad{ad_id}", Level.CAMPUS, ADKind.HYBRID))
    for (a, b), w in edges.items():
        graph.add_link(
            InterADLink(a, b, LinkKind.HIERARCHICAL, {"delay": w})
        )
    return graph


def apply_op(graph, op):
    """Mutate the graph; returns the changed link key."""
    kind, a, b, w = op
    link = graph.link_if_exists(a, b)
    if kind == "set":  # add, revive, or re-weight
        if link is None:
            graph.add_link(InterADLink(a, b, LinkKind.HIERARCHICAL, {"delay": w}))
        else:
            link.metrics["delay"] = w
            link.up = True
    elif kind == "down":
        if link is not None:
            link.up = False
    elif kind == "remove":
        if link is not None:
            graph.remove_link(a, b)
    return (a, b) if a < b else (b, a)


def assert_state_matches(state, graph):
    oracle_first = spf_next_hops(graph, ROOT, "delay")
    assert state.first_hops() == oracle_first
    fresh = IncrementalSPFState(graph, ROOT, "delay")
    assert state.dist == fresh.dist
    assert state.parent == fresh.parent


@st.composite
def graph_and_batches(draw, weights=WEIGHTS):
    n = draw(st.integers(min_value=3, max_value=9))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    weight = st.sampled_from(weights)
    edges = draw(
        st.dictionaries(st.sampled_from(pairs), weight, max_size=len(pairs))
    )
    op = st.tuples(
        st.sampled_from(["set", "set", "down", "remove"]),  # bias toward set
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
        weight,
    ).filter(lambda t: t[1] != t[2])
    batches = draw(st.lists(st.lists(op, max_size=4), max_size=6))
    return n, edges, batches


@settings(max_examples=200, deadline=None)
@given(graph_and_batches())
def test_incremental_matches_oracle_over_random_deltas(data):
    n, edges, batches = data
    graph = build_graph(n, edges)
    state = IncrementalSPFState(graph, ROOT, "delay")
    assert_state_matches(state, graph)
    for batch in batches:
        keys = [apply_op(graph, op) for op in batch]
        state.apply(keys)
        assert_state_matches(state, graph)


@settings(max_examples=100, deadline=None)
@given(graph_and_batches(weights=WEIGHTS_WITH_ZERO))
def test_zero_weight_edges_fall_back_but_stay_exact(data):
    n, edges, batches = data
    graph = build_graph(n, edges)
    state = IncrementalSPFState(graph, ROOT, "delay")
    for batch in batches:
        keys = [apply_op(graph, op) for op in batch]
        state.apply(keys)
        assert state.first_hops() == spf_next_hops(graph, ROOT, "delay")


def line_graph(weights):
    graph = InterADGraph()
    for ad_id in range(len(weights) + 1):
        graph.add_ad(AD(ad_id, f"ad{ad_id}", Level.CAMPUS, ADKind.HYBRID))
    for i, w in enumerate(weights):
        graph.add_link(InterADLink(i, i + 1, LinkKind.HIERARCHICAL, {"delay": w}))
    return graph


def test_tree_edge_removal_disconnects_subtree():
    graph = line_graph([1.0, 1.0, 1.0])
    state = IncrementalSPFState(graph, ROOT, "delay")
    graph.remove_link(1, 2)
    state.apply([(1, 2)])
    assert state.first_hops() == spf_next_hops(graph, ROOT, "delay") == {1: 1}


def test_reconnect_after_partition():
    graph = line_graph([1.0, 1.0, 1.0])
    link = graph.link(1, 2)
    link.up = False
    state = IncrementalSPFState(graph, ROOT, "delay")
    assert state.first_hops() == {1: 1}
    link.up = True
    state.apply([(1, 2)])
    assert state.first_hops() == spf_next_hops(graph, ROOT, "delay")
    assert state.repairs == 1  # took the repair path, not the fallback


def test_metric_increase_on_tree_edge_reroutes():
    # Two routes 0->3: via 1 (cost 2) and via 2 (cost 3); worsening the
    # 0-1 edge must shift traffic to the 2 side.
    graph = build_graph(
        4,
        {(0, 1): 1.0, (1, 3): 1.0, (0, 2): 1.5, (2, 3): 1.5},
    )
    state = IncrementalSPFState(graph, ROOT, "delay")
    assert state.first_hops()[3] == 1
    graph.link(0, 1).metrics["delay"] = 4.0
    state.apply([(0, 1)])
    assert state.first_hops() == spf_next_hops(graph, ROOT, "delay")
    assert state.first_hops()[3] == 2


def test_equal_cost_tie_breaks_track_the_oracle():
    # Both 0-1-3 and 0-2-3 cost 2.0; the oracle's deterministic
    # tie-break must survive adding and removing the tie.
    graph = build_graph(4, {(0, 1): 1.0, (1, 3): 1.0})
    state = IncrementalSPFState(graph, ROOT, "delay")
    for op in [
        ("set", 0, 2, 1.0),
        ("set", 2, 3, 1.0),
        ("remove", 1, 3, 1.0),
        ("set", 1, 3, 1.0),
    ]:
        keys = [apply_op(graph, op)]
        state.apply(keys)
        assert_state_matches(state, graph)


def test_large_batches_take_the_fallback_and_stay_exact():
    graph = build_graph(6, {(a, b): 1.0 for a in range(6) for b in range(a + 1, 6)})
    state = IncrementalSPFState(graph, ROOT, "delay")
    before = state.full_recomputes
    keys = []
    for a in range(6):
        for b in range(a + 1, 6):
            graph.link(a, b).metrics["delay"] = 2.0
            keys.append((a, b))
    state.apply(keys)
    assert state.full_recomputes == before + 1  # heuristic chose Dijkstra
    assert_state_matches(state, graph)
