"""Tests for the simulated network and metrics plumbing."""

from dataclasses import dataclass
from typing import List, Tuple

import pytest

from repro.adgraph.ad import ADId, InterADLink
from repro.simul.messages import Message
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode
from tests.helpers import line_graph


@dataclass(frozen=True)
class Ping(Message):
    payload: int = 0

    def size_bytes(self) -> int:
        return super().size_bytes() + 4


class Recorder(ProtocolNode):
    """Collects everything it hears."""

    def __init__(self, ad_id: ADId):
        super().__init__(ad_id)
        self.heard: List[Tuple[ADId, Message, float]] = []
        self.link_events: List[Tuple[Tuple[int, int], bool]] = []

    def on_message(self, sender, msg):
        self.heard.append((sender, msg, self.now))

    def on_link_change(self, link: InterADLink, up: bool):
        self.link_events.append((link.key, up))


@pytest.fixture
def net():
    graph = line_graph(3)
    network = SimNetwork(graph)
    network.add_nodes(Recorder(i) for i in graph.ad_ids())
    return network


class TestDelivery:
    def test_message_delivered_after_link_delay(self, net):
        net.send(0, 1, Ping(7))
        net.run()
        (sender, msg, t), = net.node(1).heard
        assert sender == 0 and msg.payload == 7
        assert t == net.graph.link(0, 1).metric("delay")

    def test_non_neighbour_send_rejected(self, net):
        with pytest.raises(ValueError):
            net.send(0, 2, Ping())

    def test_send_over_down_link_dropped_and_counted(self, net):
        net.graph.set_link_status(0, 1, up=False)
        net.send(0, 1, Ping())
        net.run()
        assert net.node(1).heard == []
        assert net.metrics.dropped == 1

    def test_bytes_and_messages_accounted_by_type(self, net):
        net.send(0, 1, Ping())
        net.send(1, 2, Ping())
        net.run()
        assert net.metrics.messages["Ping"] == 2
        assert net.metrics.bytes["Ping"] == 2 * Ping().size_bytes()

    def test_in_flight_message_survives_link_failure(self, net):
        # The message was already on the wire; failure does not recall it.
        net.send(0, 1, Ping())
        net.graph.set_link_status(0, 1, up=False)
        net.run()
        assert len(net.node(1).heard) == 1


class TestNodeManagement:
    def test_duplicate_node_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_node(Recorder(0))

    def test_unknown_ad_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_node(Recorder(99))

    def test_unattached_node_has_no_network(self):
        node = Recorder(1)
        with pytest.raises(RuntimeError):
            _ = node.network


class TestLinkChanges:
    def test_both_endpoints_notified(self, net):
        net.set_link_status(1, 2, up=False)
        assert net.node(1).link_events == [((1, 2), False)]
        assert net.node(2).link_events == [((1, 2), False)]
        assert net.node(0).link_events == []

    def test_failure_plan_scheduling(self, net):
        from repro.adgraph.failures import FailurePlan, LinkFailure

        plan = FailurePlan((LinkFailure(10.0, 0, 1), LinkFailure(20.0, 0, 1, up=True)))
        net.schedule_failure_plan(plan)
        net.run(until=15.0)
        assert not net.graph.link(0, 1).up
        net.run()
        assert net.graph.link(0, 1).up


class TestNodeHelpers:
    def test_broadcast_excludes(self, net):
        net.node(1).broadcast(Ping(), exclude=0)
        net.run()
        assert net.node(0).heard == []
        assert len(net.node(2).heard) == 1

    def test_neighbors_live_only(self, net):
        assert net.node(1).neighbors() == [0, 2]
        net.graph.set_link_status(0, 1, up=False)
        assert net.node(1).neighbors() == [2]

    def test_note_computation(self, net):
        net.node(1).note_computation("spf", 3)
        assert net.metrics.computations[(1, "spf")] == 3

    def test_base_node_rejects_unknown_message(self, net):
        node = ProtocolNode(0)
        node.attach(net)
        with pytest.raises(NotImplementedError):
            node.on_message(1, Ping())
