"""Tests for the synthesis strategies (precompute / on-demand / hybrid)."""

import pytest

from repro.core.strategies import (
    HybridStrategy,
    OnDemandStrategy,
    PrecomputeStrategy,
)
from repro.core.synthesis import RouteSynthesizer
from repro.policy.flows import FlowSpec
from tests.helpers import diamond_graph, open_db


@pytest.fixture
def synthesizer():
    g = diamond_graph()
    return RouteSynthesizer(g, open_db(g))


FLOW_A = FlowSpec(0, 3)
FLOW_B = FlowSpec(3, 0)
FLOW_C = FlowSpec(1, 2)


class TestPrecompute:
    def test_upfront_work_then_free_lookups(self, synthesizer):
        strat = PrecomputeStrategy(synthesizer, [FLOW_A, FLOW_B])
        assert strat.stats.precompute_states > 0
        assert strat.stats.precomputed_routes == 2
        route = strat.lookup(FLOW_A)
        assert route is not None and route.path == (0, 1, 3)
        assert strat.stats.hits == 1
        assert strat.stats.request_states == 0

    def test_outside_universe_misses(self, synthesizer):
        strat = PrecomputeStrategy(synthesizer, [FLOW_A])
        assert strat.lookup(FLOW_C) is None
        assert strat.stats.misses == 1

    def test_table_size(self, synthesizer):
        strat = PrecomputeStrategy(synthesizer, [FLOW_A, FLOW_B, FLOW_C])
        assert strat.table_size == 3


class TestOnDemand:
    def test_computes_then_caches(self, synthesizer):
        strat = OnDemandStrategy(synthesizer, cache_size=4)
        first = strat.lookup(FLOW_A)
        second = strat.lookup(FLOW_A)
        assert first is not None and first.path == second.path
        assert strat.stats.requests == 2
        assert strat.stats.hits == 1
        assert strat.stats.mean_request_states > 0

    def test_lru_eviction(self, synthesizer):
        strat = OnDemandStrategy(synthesizer, cache_size=1)
        strat.lookup(FLOW_A)
        strat.lookup(FLOW_B)  # evicts A
        assert strat.table_size == 1
        strat.lookup(FLOW_A)  # miss again
        assert strat.stats.hits == 0

    def test_zero_cache(self, synthesizer):
        strat = OnDemandStrategy(synthesizer, cache_size=0)
        strat.lookup(FLOW_A)
        strat.lookup(FLOW_A)
        assert strat.stats.hits == 0
        assert strat.table_size == 0

    def test_negative_cache_rejected(self, synthesizer):
        with pytest.raises(ValueError):
            OnDemandStrategy(synthesizer, cache_size=-1)

    def test_negative_results_cached_too(self, synthesizer):
        unreachable = FlowSpec(0, 3, hour=1)
        # Make it genuinely unreachable by avoiding both transits.
        from repro.policy.selection import RouteSelectionPolicy

        sel = RouteSelectionPolicy(avoid_ads=frozenset({1, 2}))
        strat = OnDemandStrategy(synthesizer, cache_size=4)
        assert strat.lookup(unreachable, sel) is None
        assert strat.lookup(unreachable, sel) is None
        assert strat.stats.hits == 1


class TestHybrid:
    def test_popular_hits_precomputed(self, synthesizer):
        strat = HybridStrategy(synthesizer, popular=[FLOW_A], cache_size=4)
        assert strat.stats.precomputed_routes == 1
        strat.lookup(FLOW_A)
        assert strat.stats.hits == 1
        assert strat.stats.request_states == 0

    def test_unpopular_goes_on_demand(self, synthesizer):
        strat = HybridStrategy(synthesizer, popular=[FLOW_A], cache_size=4)
        route = strat.lookup(FLOW_B)
        assert route is not None
        assert strat.stats.request_states > 0
        strat.lookup(FLOW_B)
        assert strat.stats.hits == 1  # second time from LRU

    def test_table_size_counts_both(self, synthesizer):
        strat = HybridStrategy(synthesizer, popular=[FLOW_A], cache_size=4)
        strat.lookup(FLOW_B)
        assert strat.table_size == 2

    def test_hit_ratio(self, synthesizer):
        strat = HybridStrategy(synthesizer, popular=[FLOW_A], cache_size=4)
        for _ in range(4):
            strat.lookup(FLOW_A)
        strat.lookup(FLOW_B)
        assert strat.stats.hit_ratio == pytest.approx(4 / 5)
