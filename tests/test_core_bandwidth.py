"""Tests for bottleneck-bandwidth QOS routing (widest-path synthesis)."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.core.synthesis import synthesize_route
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import restricted_policies
from repro.policy.legality import is_legal_path, path_metric
from repro.policy.qos import QOS
from repro.policy.selection import RouteSelectionPolicy
from repro.policy.terms import PolicyTerm
from tests.helpers import mk_graph, open_db


def wide_diamond():
    """0 -> {1, 2} -> 3: via 1 is short but narrow, via 2 long but wide."""
    return mk_graph(
        [(0, "Cs"), (1, "Rt"), (2, "Rt"), (3, "Cs")],
        [(0, 1), (0, 2), (1, 3), (2, 3)],
        metrics={
            (0, 1): {"delay": 1.0, "cost": 1.0, "bandwidth": 1.5},
            (1, 3): {"delay": 1.0, "cost": 1.0, "bandwidth": 45.0},
            (0, 2): {"delay": 5.0, "cost": 1.0, "bandwidth": 45.0},
            (2, 3): {"delay": 5.0, "cost": 1.0, "bandwidth": 34.0},
        },
    )


class TestWidestPath:
    def test_bandwidth_flow_takes_wide_branch(self):
        g = wide_diamond()
        db = open_db(g)
        delay_route = synthesize_route(g, db, FlowSpec(0, 3, qos=QOS.DEFAULT))
        bw_route = synthesize_route(g, db, FlowSpec(0, 3, qos=QOS.HIGH_BANDWIDTH))
        assert delay_route.path == (0, 1, 3)
        assert bw_route.path == (0, 2, 3)
        assert bw_route.cost == 34.0  # the bottleneck, not a sum

    def test_trivial_flow_has_infinite_width(self):
        g = wide_diamond()
        route = synthesize_route(g, open_db(g), FlowSpec(0, 0, qos=QOS.HIGH_BANDWIDTH))
        assert route.path == (0,)
        assert route.cost == float("inf")

    def test_policy_constraints_still_apply(self):
        g = wide_diamond()
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1))  # only the narrow transit serves
        route = synthesize_route(g, db, FlowSpec(0, 3, qos=QOS.HIGH_BANDWIDTH))
        assert route.path == (0, 1, 3)
        assert route.cost == 1.5

    def test_qos_restricted_term_blocks_bandwidth_class(self):
        g = wide_diamond()
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1))
        db.add_term(
            PolicyTerm(owner=2, qos_classes=frozenset(QOS.additive_classes()))
        )
        route = synthesize_route(g, db, FlowSpec(0, 3, qos=QOS.HIGH_BANDWIDTH))
        # AD 2 refuses the bandwidth class; only the narrow branch is legal.
        assert route.path == (0, 1, 3)

    def test_selection_criteria_respected(self):
        g = wide_diamond()
        sel = RouteSelectionPolicy(avoid_ads=frozenset({2}))
        route = synthesize_route(
            g, open_db(g), FlowSpec(0, 3, qos=QOS.HIGH_BANDWIDTH), sel
        )
        assert route.path == (0, 1, 3)

    def test_unreachable(self):
        g = wide_diamond()
        g.set_link_status(0, 1, up=False)
        g.set_link_status(0, 2, up=False)
        assert synthesize_route(
            g, open_db(g), FlowSpec(0, 3, qos=QOS.HIGH_BANDWIDTH)
        ) is None

    def test_path_metric_is_minimum(self):
        g = wide_diamond()
        assert path_metric(g, (0, 2, 3), QOS.HIGH_BANDWIDTH) == 34.0
        assert path_metric(g, (0, 2, 3), QOS.DEFAULT) == 10.0


class TestGeneratedBandwidth:
    def test_generator_attaches_bandwidth(self):
        g = generate_internet(TopologyConfig(seed=5))
        for link in g.links():
            assert link.metrics["bandwidth"] > 0

    def test_backbone_links_widest(self):
        from repro.adgraph.ad import Level

        g = generate_internet(TopologyConfig(num_backbones=3, seed=5))
        bb_links = [
            ln
            for ln in g.links()
            if g.ad(ln.a).level is Level.BACKBONE and g.ad(ln.b).level is Level.BACKBONE
        ]
        edge_links = [
            ln
            for ln in g.links()
            if Level.CAMPUS in (g.ad(ln.a).level, g.ad(ln.b).level)
            and Level.BACKBONE not in (g.ad(ln.a).level, g.ad(ln.b).level)
        ]
        assert min(ln.metric("bandwidth") for ln in bb_links) > max(
            ln.metric("bandwidth") for ln in edge_links
        )

    def test_bandwidth_stream_does_not_perturb_delay(self):
        """Adding the bandwidth metric must not have changed committed
        delay/cost draws (separate RNG stream)."""
        g = generate_internet(TopologyConfig(seed=42))
        # Spot values from the pre-bandwidth era of this repository.
        assert g.num_ads == 26 and g.num_links == 32


def _brute_force_widest(graph, db, flow):
    best = None
    nxg = graph.nx_graph()
    if flow.src not in nxg or flow.dst not in nxg:
        return None
    for path in nx.all_simple_paths(nxg, flow.src, flow.dst):
        if is_legal_path(graph, db, path, flow):
            width = path_metric(graph, path, flow.qos)
            if best is None or width > best:
                best = width
    return best


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000))
def test_widest_path_matches_brute_force(seed):
    """Property: synthesis finds the maximum-bottleneck legal route."""
    rng = random.Random(seed)
    g = generate_internet(
        TopologyConfig(
            num_backbones=1,
            regionals_per_backbone=2,
            campuses_per_parent=2,
            lateral_prob=0.5,
            seed=seed % 30,
        )
    )
    db = restricted_policies(g, 0.5, seed=seed).policies
    src, dst = rng.sample(g.ad_ids(), 2)
    flow = FlowSpec(src, dst, qos=QOS.HIGH_BANDWIDTH, hour=rng.randrange(24))
    expected = _brute_force_widest(g, db, flow)
    route = synthesize_route(g, db, flow)
    if expected is None:
        assert route is None
    else:
        assert route is not None
        assert is_legal_path(g, db, route.path, flow)
        assert route.cost == pytest.approx(expected)


class TestProtocolIntegration:
    def test_orwg_routes_and_delivers_bandwidth_flows(self):
        from repro.protocols.orwg import ORWGProtocol

        g = wide_diamond()
        proto = ORWGProtocol(g, open_db(g))
        proto.converge()
        flow = FlowSpec(0, 3, qos=QOS.HIGH_BANDWIDTH)
        assert proto.source_route(flow) == (0, 2, 3)
        attempt = proto.open_route(flow)
        proto.network.run()
        assert attempt.established
        proto.send_data(attempt, packets=3)
        proto.network.run()
        assert proto.delivered(attempt) == 3

    def test_k_routes_ranked_widest_first(self):
        from repro.core.synthesis import k_alternative_routes

        g = wide_diamond()
        routes = k_alternative_routes(
            g, open_db(g), FlowSpec(0, 3, qos=QOS.HIGH_BANDWIDTH), k=3
        )
        widths = [r.cost for r in routes]
        assert widths == sorted(widths, reverse=True)
        assert routes[0].path == (0, 2, 3)

    def test_hierarchical_synthesizer_supports_bandwidth(self):
        from repro.core.hierarchical import HierarchicalSynthesizer
        from repro.policy.generators import hierarchical_policies

        g = generate_internet(TopologyConfig(seed=8))
        db = hierarchical_policies(g).policies
        hs = HierarchicalSynthesizer(g, db)
        stubs = [a.ad_id for a in g.stub_ads()]
        flow = FlowSpec(stubs[0], stubs[-1], qos=QOS.HIGH_BANDWIDTH)
        route = hs.route(flow)
        flat = synthesize_route(g, db, flow)
        assert (route is None) == (flat is None)
        if route is not None:
            assert is_legal_path(g, db, route.path, flow)
