"""Tests for ground-truth evaluation and availability reports."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.core.evaluation import (
    AvailabilityReport,
    evaluate_availability,
    legal_route_exists,
    sample_flows,
)
from repro.core.synthesis import synthesize_route
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import restricted_policies
from repro.policy.legality import is_legal_path
from repro.policy.qos import QOS
from repro.policy.uci import UCI
from tests.helpers import diamond_graph, line_graph, open_db


class TestLegalRouteExists:
    def test_trivial_and_simple(self):
        g = diamond_graph()
        db = open_db(g)
        assert legal_route_exists(g, db, FlowSpec(0, 0)) is True
        assert legal_route_exists(g, db, FlowSpec(0, 3)) is True

    def test_policy_blocks_existence(self):
        g = line_graph(3)
        assert legal_route_exists(g, PolicyDatabase(), FlowSpec(0, 2)) is False

    def test_partition_blocks_existence(self):
        g = line_graph(3)
        g.set_link_status(0, 1, up=False)
        assert legal_route_exists(g, open_db(g), FlowSpec(0, 2)) is False

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_matches_brute_force(self, seed):
        """Property: existence matches exhaustive path enumeration."""
        import random

        g = generate_internet(
            TopologyConfig(
                num_backbones=1,
                regionals_per_backbone=2,
                campuses_per_parent=2,
                lateral_prob=0.4,
                seed=seed % 30,
            )
        )
        db = restricted_policies(g, 0.8, seed=seed).policies
        rng = random.Random(seed)
        src, dst = rng.sample(g.ad_ids(), 2)
        flow = FlowSpec(src, dst, hour=rng.randrange(24))
        nxg = g.nx_graph()
        expected = any(
            is_legal_path(g, db, p, flow)
            for p in nx.all_simple_paths(nxg, src, dst)
        )
        assert legal_route_exists(g, db, flow) is expected


class TestSampleFlows:
    def test_count_and_distinct_endpoints(self, gen_graph):
        flows = sample_flows(gen_graph, 25, seed=1)
        assert len(flows) == 25
        for f in flows:
            assert f.src != f.dst

    def test_stub_pool_uses_leaf_ads(self, gen_graph):
        flows = sample_flows(gen_graph, 20, seed=1)
        leaves = {a.ad_id for a in gen_graph.ads() if a.level.rank == 0}
        for f in flows:
            assert f.src in leaves and f.dst in leaves

    def test_class_choices_respected(self, gen_graph):
        flows = sample_flows(
            gen_graph,
            30,
            seed=2,
            qos_choices=[QOS.LOW_COST],
            uci_choices=[UCI.RESEARCH],
        )
        assert {f.qos for f in flows} == {QOS.LOW_COST}
        assert {f.uci for f in flows} == {UCI.RESEARCH}

    def test_deterministic(self, gen_graph):
        assert sample_flows(gen_graph, 10, seed=3) == sample_flows(
            gen_graph, 10, seed=3
        )

    def test_unknown_pool_rejected(self, gen_graph):
        with pytest.raises(ValueError):
            sample_flows(gen_graph, 5, endpoints="bogus")


class TestEvaluateAvailability:
    def test_perfect_finder_scores_one(self, gen_graph, gen_restricted):
        flows = sample_flows(gen_graph, 20, seed=4)
        finder = lambda f: synthesize_route(gen_graph, gen_restricted, f)
        report = evaluate_availability(gen_graph, gen_restricted, flows, finder)
        assert report.availability == 1.0
        assert report.n_illegal == 0
        assert report.mean_stretch == pytest.approx(1.0)

    def test_blind_finder_scores_zero(self, gen_graph, gen_restricted):
        flows = sample_flows(gen_graph, 10, seed=4)
        report = evaluate_availability(
            gen_graph, gen_restricted, flows, lambda f: None
        )
        assert report.n_found == 0
        assert report.availability == 0.0 or report.n_existing == 0

    def test_illegal_routes_counted_not_credited(self, gen_graph, gen_restricted):
        flows = sample_flows(gen_graph, 10, seed=4)

        def cheater(flow):
            # Claim a direct link regardless of reality.
            return (flow.src, flow.dst)

        report = evaluate_availability(gen_graph, gen_restricted, flows, cheater)
        assert report.n_found == 10
        assert report.n_found_legal + report.n_illegal == 10

    def test_stretch_reflects_suboptimal_finder(self):
        g = diamond_graph()
        db = open_db(g)
        flows = [FlowSpec(0, 3)]
        expensive = lambda f: (0, 2, 3)
        report = evaluate_availability(g, db, flows, expensive)
        assert report.mean_stretch == pytest.approx(10.0 / 2.0)

    def test_empty_report_defaults(self):
        report = AvailabilityReport()
        assert report.availability == 1.0
        assert report.mean_stretch == 1.0
