"""The harness substrate axis: live cells and the v5 record shim."""

import json

import pytest

from repro.harness.record import SCHEMA_VERSION, RunRecord
from repro.harness.session import execute_cell
from repro.harness.spec import (
    Cell,
    ExperimentSpec,
    FailureSpec,
    FaultSpec,
    MisbehaviorSpec,
    ProtocolSpec,
    ScenarioSpec,
)


def _cell(**overrides):
    defaults = dict(
        experiment="t",
        index=0,
        scenario=ScenarioSpec(kind="small", num_flows=5),
        protocol=ProtocolSpec(name="plain-ls"),
        failure=FailureSpec(),
    )
    defaults.update(overrides)
    return Cell(**defaults)


def test_spec_expands_substrate_to_every_cell():
    spec = ExperimentSpec(
        name="t",
        scenarios=(ScenarioSpec(kind="small"),),
        protocols=(ProtocolSpec(name="plain-ls"),),
        substrate="live",
    )
    cells = spec.cells()
    assert cells and all(cell.substrate == "live" for cell in cells)
    assert all(cell.key()["substrate"] == "live" for cell in cells)


def test_live_cell_executes_and_records_substrate():
    record = execute_cell(
        _cell(failure=FailureSpec(kind="random", count=1), substrate="live")
    )
    assert record.substrate == "live"
    assert record.cell["substrate"] == "live"
    assert record.schema_version == SCHEMA_VERSION
    assert record.quiesced
    # initial + failure + repair episodes, all of which cost messages.
    assert [ep.kind for ep in record.episodes] == ["initial", "failure", "repair"]
    assert all(ep.messages > 0 for ep in record.episodes)
    assert "live.wall" in record.timings
    # The record survives its own JSON round trip.
    again = RunRecord.from_json(record.to_json())
    assert again.substrate == "live"
    assert again.episodes == record.episodes


def test_live_cell_rejects_sim_only_axes():
    with pytest.raises(ValueError, match="fault"):
        execute_cell(_cell(fault=FaultSpec(flaps=1), substrate="live"))
    with pytest.raises(ValueError, match="misbehavior"):
        execute_cell(
            _cell(misbehavior=MisbehaviorSpec(lie="route-leak"), substrate="live")
        )
    with pytest.raises(ValueError, match="trace"):
        execute_cell(_cell(trace="all", substrate="live"))


def test_unknown_substrate_rejected():
    with pytest.raises(ValueError, match="substrate"):
        execute_cell(_cell(substrate="quantum"))


def test_v4_records_load_with_sim_substrate():
    record = execute_cell(_cell())
    data = json.loads(record.to_json())
    # Regress the line to v4: no substrate anywhere.
    data["schema_version"] = 4
    del data["substrate"]
    del data["cell"]["substrate"]
    loaded = RunRecord.from_json(json.dumps(data))
    assert loaded.schema_version == SCHEMA_VERSION
    assert loaded.substrate == "sim"
    assert loaded.cell["substrate"] == "sim"


def test_sim_records_default_substrate():
    record = execute_cell(_cell())
    assert record.substrate == "sim"
    assert record.cell["substrate"] == "sim"
