"""Tests for batched replay: percentiles, summaries, epoch tails."""

import pytest

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.policy.generators import restricted_policies
from repro.protocols.registry import make_protocol
from repro.traffic.fib import DELIVERED, LinkIndex, compile_fib
from repro.traffic.replay import (
    TailSeries,
    TrafficReplay,
    shortest_hops,
    weighted_percentile,
)
from repro.traffic.workload import WorkloadSpec, zipf_workload
from tests.helpers import line_graph


@pytest.fixture(scope="module")
def setting():
    graph = generate_internet(TopologyConfig(seed=42))
    policies = restricted_policies(graph, 0.4, seed=42).policies
    protocol = make_protocol("ls-hbh", graph, policies)
    protocol.converge()
    wl = zipf_workload(graph, WorkloadSpec(flows=20_000, pairs=128, seed=8))
    return graph, protocol, wl


class TestWeightedPercentile:
    def test_empty(self):
        assert weighted_percentile([], 0.99) == 0.0

    def test_single(self):
        assert weighted_percentile([(3.0, 10)], 0.5) == 3.0

    def test_weights_shift_the_tail(self):
        # 99 flows at 1.0, 1 flow at 100.0: p50 sits in the head,
        # p995 reaches the heavy flow.
        samples = [(1.0, 99), (100.0, 1)]
        assert weighted_percentile(samples, 0.50) == 1.0
        assert weighted_percentile(samples, 0.995) == 100.0

    def test_order_independent(self):
        samples = [(5.0, 1), (1.0, 3), (2.0, 6)]
        assert weighted_percentile(samples, 0.9) == weighted_percentile(
            sorted(samples, reverse=True), 0.9
        )


class TestShortestHops:
    def test_line(self):
        g = line_graph(5)
        hops = shortest_hops(g, [(0, 4), (0, 0), (4, 1)])
        assert list(hops) == [4, 0, 3]

    def test_ignores_liveness(self):
        g = line_graph(3)
        g.set_link_status(1, 2, up=False)
        assert list(shortest_hops(g, [(0, 2)])) == [2]


class TestReplaySummary:
    def test_verdicts_partition_the_flows(self, setting):
        graph, protocol, wl = setting
        replay = TrafficReplay(wl, graph)
        fib = compile_fib(protocol, wl.classes)
        summary = replay.replay(fib)
        assert summary.flows == len(wl)
        assert sum(summary.verdict_flows) == summary.flows
        assert 0.0 <= summary.reach_gap < 1.0
        assert summary.delivered_bytes <= summary.total_bytes
        assert summary.latency_p99 >= summary.latency_p50 > 0
        assert summary.stretch_p50 >= 1.0
        d = summary.as_dict()
        assert d["flows"] == summary.flows
        assert sum(d["verdicts"].values()) == summary.flows

    def test_matches_legacy_oracle(self, setting):
        graph, protocol, wl = setting
        replay = TrafficReplay(wl, graph)
        fib = compile_fib(protocol, wl.classes)
        assert replay.flow_verdicts(fib) == replay.replay_legacy(protocol)

    def test_per_flow_oracle_agrees(self, setting):
        graph, protocol, wl = setting
        replay = TrafficReplay(wl, graph)
        assert replay.replay_legacy(protocol) == replay.replay_legacy_per_flow(
            protocol
        )


class TestTailSeries:
    def test_degrading_epochs_move_the_tail(self, setting):
        graph, protocol, wl = setting
        replay = TrafficReplay(wl, graph)
        fib = compile_fib(protocol, wl.classes)
        index = LinkIndex(graph)
        tail = TailSeries(wl)
        tail.record(0.0, "initial", fib, replay)
        assert tail.outage_percentile(0.99) == 0.0
        # Degrade: fail a batch of links, replay the same compiled FIB.
        for key in index.keys[::5]:
            graph.set_link_status(*key, up=False)
        broken = tail.record(100.0, "failure", fib, replay)
        for key in index.keys[::5]:
            graph.set_link_status(*key, up=True)
        tail.record(200.0, "final", fib, replay)
        assert broken.summary.reach_gap > tail.epochs[0].summary.reach_gap
        assert tail.worst_gap() == broken.summary.reach_gap
        assert 0.0 < tail.outage_percentile(0.99) <= 1.0
        d = tail.as_dict()
        assert len(d["epochs"]) == 3
        assert d["epochs"][1]["label"] == "failure"
        assert d["worst_gap"] == tail.worst_gap()

    def test_baseline_filter(self, setting):
        """Classes never deliverable at the converged start are a policy/
        availability fact, not a convergence outage: they must not
        saturate the tail percentiles."""
        graph, protocol, wl = setting
        replay = TrafficReplay(wl, graph)
        fib = compile_fib(protocol, wl.classes)
        verdicts = fib.class_verdicts()
        structurally_dark = [
            c for c, v in enumerate(verdicts) if v != DELIVERED
        ]
        tail = TailSeries(wl)
        tail.record(0.0, "initial", fib, replay)
        tail.record(50.0, "sample", fib, replay)
        fractions = dict(
            (c, frac)
            for (frac, _), c in zip(
                tail.outage_fractions(),
                [
                    c
                    for c in range(wl.num_classes)
                    if wl.class_counts[c] and tail._baseline_ok[c]
                ],
            )
        )
        # Steady state, no failures: every *routable* class has zero
        # outage; dark classes are excluded rather than pinned at 1.0.
        assert all(frac == 0.0 for frac in fractions.values())
        assert structurally_dark  # the scenario does have dark classes
        included = sum(1 for c in wl.class_counts if c) - len(
            [c for c in structurally_dark if wl.class_counts[c]]
        )
        assert len(tail.outage_fractions()) == included
