"""FIB compiler equivalence suite: compiled verdicts == legacy forwarder.

The compiled data plane's whole claim is *verdict identity*: for any
control state (converged or stale) and any liveness snapshot, walking
the compiled program classifies every flow exactly as
:func:`repro.forwarding.dataplane.forward_flow` would.  These tests pin
that claim across every registered protocol, across policy-rich flow
universes (where the fib-key dedup must not leak policy decisions
between classes), and -- via hypothesis -- across random topologies,
restrictiveness levels, and post-failure stale-FIB states.
"""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.forwarding.dataplane import forward_flow
from repro.policy.flows import FlowSpec
from repro.policy.generators import restricted_policies
from repro.policy.qos import QOS
from repro.policy.uci import UCI
from repro.protocols.registry import (
    all_protocol_names,
    available_protocols,
    make_protocol,
)
from repro.traffic.fib import (
    DELIVERED,
    VERDICT_NAMES,
    LinkIndex,
    compile_fib,
    verdict_of_outcome,
)
from repro.traffic.workload import WorkloadSpec, zipf_workload

DESIGN_POINTS = all_protocol_names()
ALL_PROTOCOLS = available_protocols()


def scenario(seed=42, restrictiveness=0.4):
    graph = generate_internet(TopologyConfig(seed=seed))
    policies = restricted_policies(graph, restrictiveness, seed=seed).policies
    return graph, policies


def converged(name, graph, policies):
    protocol = make_protocol(name, graph, policies)
    protocol.converge()
    return protocol


def legacy_verdicts(protocol, classes, enforce_policy=True):
    return array(
        "b",
        (
            verdict_of_outcome(forward_flow(protocol, f, enforce_policy))
            for f in classes
        ),
    )


def assert_equivalent(protocol, classes, enforce_policy=True):
    fib = compile_fib(protocol, classes, enforce_policy=enforce_policy)
    compiled = fib.class_verdicts()
    legacy = legacy_verdicts(protocol, classes, enforce_policy)
    mismatches = [
        (f, VERDICT_NAMES[c], VERDICT_NAMES[l])
        for f, c, l in zip(classes, compiled, legacy)
        if c != l
    ]
    assert not mismatches, (
        f"{protocol.name}: {len(mismatches)} verdict mismatches, "
        f"first: {mismatches[0]}"
    )
    return fib


class TestConvergedEquivalence:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_all_protocols(self, name):
        graph, policies = scenario()
        protocol = converged(name, graph, policies)
        wl = zipf_workload(graph, WorkloadSpec(flows=1, pairs=512, seed=8))
        assert_equivalent(protocol, wl.classes)

    @pytest.mark.parametrize("name", ["ls-hbh", "orwg"])
    def test_policy_blind(self, name):
        graph, policies = scenario()
        protocol = converged(name, graph, policies)
        wl = zipf_workload(graph, WorkloadSpec(flows=1, pairs=256, seed=8))
        assert_equivalent(protocol, wl.classes, enforce_policy=False)


class TestStaleFIB:
    """Compiled-at-convergence FIBs against a degraded liveness snapshot.

    The legacy forwarder reads the protocol's (now stale) tables against
    ground-truth link state; the compiled program must classify
    identically when walked against the matching liveness bytearray."""

    @pytest.mark.parametrize("name", DESIGN_POINTS)
    def test_links_fail_after_compile(self, name):
        graph, policies = scenario()
        protocol = converged(name, graph, policies)
        wl = zipf_workload(graph, WorkloadSpec(flows=1, pairs=256, seed=8))
        fib = compile_fib(protocol, wl.classes)
        index = LinkIndex(graph)
        baseline_dark = sum(
            1 for v in fib.class_verdicts() if v != DELIVERED
        )
        # Fail several links without letting the protocol react.
        for key in index.keys[:: max(1, len(index.keys) // 7)]:
            graph.set_link_status(*key, up=False)
        compiled = fib.class_verdicts(index.liveness())
        legacy = legacy_verdicts(protocol, wl.classes)
        assert compiled == legacy
        assert sum(1 for v in compiled if v != DELIVERED) > baseline_dark


class TestDedupSafety:
    """fib_key_fields dedup must not leak policy bits between classes.

    Routing state may be dst-only, but ``transit_permits`` reads the
    whole flow -- two classes sharing a walk can still differ in
    verdict.  Build a flow universe that varies qos/uci/hour over the
    same (src, dst) pairs and require exact equivalence."""

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_rich_flow_universe(self, name):
        graph, policies = scenario(seed=11, restrictiveness=0.5)
        protocol = converged(name, graph, policies)
        base = zipf_workload(graph, WorkloadSpec(flows=1, pairs=48, seed=2))
        rich = [
            FlowSpec(f.src, f.dst, qos=qos, uci=uci, hour=hour)
            for f in base.classes
            for qos in (QOS.DEFAULT, QOS.LOW_DELAY)
            for uci in (UCI.DEFAULT, UCI.COMMERCIAL)
            for hour in (3, 14)
        ]
        fib = assert_equivalent(protocol, rich)
        # Dedup actually engaged: fewer distinct walks than classes
        # whenever the protocol's fib key drops some flow fields.
        if len(protocol.fib_key_fields) < 5:
            assert fib.stats.table_entries < len(rich)


class TestLookupBatch:
    def test_gather_matches_classes(self):
        graph, policies = scenario()
        protocol = converged("ls-hbh", graph, policies)
        wl = zipf_workload(graph, WorkloadSpec(flows=5000, pairs=128, seed=3))
        fib = compile_fib(protocol, wl.classes)
        per_class = fib.class_verdicts()
        per_flow = fib.lookup_batch(wl.class_of)
        assert len(per_flow) == 5000
        assert all(
            per_flow[i] == per_class[c] for i, c in enumerate(wl.class_of)
        )

    def test_stats_accounting(self):
        graph, policies = scenario()
        protocol = converged("orwg", graph, policies)
        wl = zipf_workload(graph, WorkloadSpec(flows=1, pairs=128, seed=3))
        fib = compile_fib(protocol, wl.classes)
        stats = fib.stats
        assert stats.classes == len(wl.classes)
        assert stats.bytes > 0
        assert stats.program_hops == len(fib.hop_links)
        d = stats.as_dict()
        assert d["classes"] == stats.classes


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    restrictiveness=st.floats(min_value=0.0, max_value=0.8),
    name=st.sampled_from(DESIGN_POINTS),
    fail_stride=st.integers(min_value=0, max_value=5),
)
def test_equivalence_random_topologies(seed, restrictiveness, name, fail_stride):
    """Property: verdict identity holds on arbitrary seeded internets,
    both converged and with post-compile failures (stale FIBs)."""
    graph = generate_internet(TopologyConfig(seed=seed))
    policies = restricted_policies(graph, restrictiveness, seed=seed).policies
    protocol = make_protocol(name, graph, policies)
    protocol.converge()
    wl = zipf_workload(graph, WorkloadSpec(flows=1, pairs=96, seed=seed))
    fib = compile_fib(protocol, wl.classes)
    index = LinkIndex(graph)
    if fail_stride:
        for key in index.keys[::7][:fail_stride]:
            graph.set_link_status(*key, up=False)
    compiled = fib.class_verdicts(index.liveness())
    legacy = legacy_verdicts(protocol, wl.classes)
    assert compiled == legacy
