"""Shared test helpers: compact graph builders and tiny topologies."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.adgraph.ad import AD, ADKind, InterADLink, Level, LinkKind
from repro.adgraph.graph import InterADGraph
from repro.policy.database import PolicyDatabase
from repro.policy.terms import PolicyTerm

#: Shorthand level/kind codes for the compact builder.
_LEVELS = {
    "B": Level.BACKBONE,
    "R": Level.REGIONAL,
    "M": Level.METRO,
    "C": Level.CAMPUS,
}
_KINDS = {
    "t": ADKind.TRANSIT,
    "h": ADKind.HYBRID,
    "s": ADKind.STUB,
    "m": ADKind.MULTIHOMED,
}


def mk_graph(
    nodes: Sequence[Tuple[int, str]],
    edges: Iterable[Tuple[int, int]],
    metrics: Optional[Dict[Tuple[int, int], Dict[str, float]]] = None,
) -> InterADGraph:
    """Build a graph from compact specs.

    ``nodes`` entries are ``(ad_id, "Bt")`` -- a level letter (B/R/M/C)
    followed by a kind letter (t/h/s/m).  ``edges`` are id pairs; link
    kind is inferred (same level -> lateral, else hierarchical) and every
    link gets delay=1, cost=1 unless overridden via ``metrics``.
    """
    graph = InterADGraph()
    for ad_id, code in nodes:
        level = _LEVELS[code[0]]
        kind = _KINDS[code[1]]
        graph.add_ad(AD(ad_id, f"n{ad_id}", level, kind))
    metrics = metrics or {}
    for a, b in edges:
        same_level = graph.ad(a).level == graph.ad(b).level
        kind = LinkKind.LATERAL if same_level else LinkKind.HIERARCHICAL
        m = metrics.get((a, b)) or metrics.get((b, a)) or {"delay": 1.0, "cost": 1.0}
        graph.add_link(InterADLink(a, b, kind, dict(m)))
    return graph


def line_graph(n: int, kind_code: str = "Rt") -> InterADGraph:
    """A line of ``n`` transit ADs: 0 - 1 - ... - n-1."""
    return mk_graph(
        [(i, kind_code) for i in range(n)],
        [(i, i + 1) for i in range(n - 1)],
    )


def diamond_graph() -> InterADGraph:
    """The classic diamond: 0 -> {1, 2} -> 3, all transit.

    Node 1 sits on the cheap path (delay 1 per hop), node 2 on the
    expensive one (delay 5 per hop).
    """
    return mk_graph(
        [(0, "Cs"), (1, "Rt"), (2, "Rt"), (3, "Cs")],
        [(0, 1), (0, 2), (1, 3), (2, 3)],
        metrics={
            (0, 1): {"delay": 1.0, "cost": 1.0},
            (1, 3): {"delay": 1.0, "cost": 1.0},
            (0, 2): {"delay": 5.0, "cost": 1.0},
            (2, 3): {"delay": 5.0, "cost": 1.0},
        },
    )


def small_hierarchy() -> InterADGraph:
    """A minimal Figure-1 shape: 1 backbone, 2 regionals, 4 campuses,
    plus one lateral between the regionals and one campus bypass."""
    graph = mk_graph(
        [
            (0, "Bt"),
            (1, "Rt"),
            (2, "Rh"),
            (3, "Cs"),
            (4, "Cs"),
            (5, "Cs"),
            (6, "Cs"),
        ],
        [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6), (1, 2)],
    )
    graph.add_link(InterADLink(3, 0, LinkKind.BYPASS, {"delay": 2.0, "cost": 2.0}))
    return graph


def open_db(graph: InterADGraph) -> PolicyDatabase:
    """Open policies for every transit-capable AD of ``graph``."""
    db = PolicyDatabase()
    for ad in graph.transit_ads():
        db.add_term(PolicyTerm(owner=ad.ad_id))
    return db
