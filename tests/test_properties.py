"""Cross-cutting property tests over random scenarios.

These are the whole-system invariants the paper's arguments rest on,
checked with hypothesis over random topologies, policies and flows:

* ORWG's availability theorem: a route is found iff a legal one exists;
* every protocol's delivered path is legal *for that protocol's policy
  knowledge class* (LS+PT protocols: always legal);
* ECMA forwarding is valley-free;
* simulations are deterministic functions of their seeds;
* the ADSet algebra satisfies the Boolean laws the IDRP scope
  propagation relies on.
"""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.core.evaluation import legal_route_exists, sample_flows
from repro.core.hierarchical import HierarchicalSynthesizer
from repro.policy.generators import restricted_policies, source_class_policies
from repro.policy.legality import is_legal_path
from repro.policy.sets import ADSet
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.idrp import IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.orwg import ORWGProtocol

_slow = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _random_setting(seed):
    graph = generate_internet(
        TopologyConfig(
            num_backbones=1 + seed % 2,
            regionals_per_backbone=2 + seed % 2,
            campuses_per_parent=2,
            lateral_prob=0.4,
            bypass_prob=0.2,
            seed=seed % 40,
        )
    )
    policies = restricted_policies(graph, 0.4, seed=seed).policies
    flows = sample_flows(graph, 12, seed=seed + 1)
    return graph, policies, flows


@_slow
@given(seed=st.integers(0, 10_000))
def test_orwg_availability_theorem(seed):
    """The Section 5.4 claim as a theorem: ORWG finds a route iff a legal
    route exists, and the route is legal."""
    graph, policies, flows = _random_setting(seed)
    proto = ORWGProtocol(graph, policies)
    proto.converge()
    for flow in flows:
        path = proto.find_route(flow)
        exists = legal_route_exists(graph, policies, flow)
        assert (path is not None) == bool(exists)
        if path is not None:
            assert is_legal_path(graph, policies, path, flow)


@_slow
@given(seed=st.integers(0, 10_000))
def test_ls_pt_protocols_never_route_illegally(seed):
    graph, policies, flows = _random_setting(seed)
    for cls in (ORWGProtocol, LinkStateHopByHopProtocol):
        proto = cls(graph.copy(), policies.copy())
        proto.converge()
        for flow in flows:
            path = proto.find_route(flow)
            if path is not None:
                assert is_legal_path(proto.graph, proto.policies, path, flow), (
                    cls.name,
                    path,
                )


@_slow
@given(seed=st.integers(0, 10_000))
def test_ecma_forwarding_is_valley_free(seed):
    graph, policies, flows = _random_setting(seed)
    proto = ECMAProtocol(graph, policies)
    proto.converge()
    for flow in flows:
        path = proto.find_route(flow)
        if path is not None and len(path) > 1:
            assert proto.order.path_is_valid(path)


@_slow
@given(seed=st.integers(0, 10_000))
def test_idrp_routes_legal_when_scoped(seed):
    """IDRP with source scopes is conservative: what it routes is legal
    (the control plane never admits a source the path refuses)."""
    graph = generate_internet(TopologyConfig(seed=seed % 40))
    policies = source_class_policies(graph, 3, refusal_prob=0.3, seed=seed).policies
    flows = sample_flows(graph, 10, seed=seed + 1)
    proto = IDRPProtocol(graph, policies)
    proto.converge()
    for flow in flows:
        path = proto.find_route(flow)
        if path is not None:
            assert is_legal_path(graph, policies, path, flow)


@_slow
@given(seed=st.integers(0, 10_000))
def test_simulation_determinism(seed):
    graph, policies, flows = _random_setting(seed)

    def run():
        proto = IDRPProtocol(graph.copy(), policies.copy())
        result = proto.converge()
        routes = tuple(proto.find_route(f) for f in flows)
        return (result.messages, result.bytes, result.time, routes)

    assert run() == run()


@_slow
@given(seed=st.integers(0, 10_000))
def test_hierarchical_synthesis_complete_and_legal(seed):
    graph, policies, flows = _random_setting(seed)
    hier = HierarchicalSynthesizer(graph, policies)
    for flow in flows:
        route = hier.route(flow)
        exists = legal_route_exists(graph, policies, flow)
        assert (route is not None) == bool(exists)
        if route is not None:
            assert is_legal_path(graph, policies, route.path, flow)


_members = st.frozensets(st.integers(0, 7), max_size=5)
_adsets = st.one_of(
    st.just(ADSet.everyone()),
    _members.map(ADSet.of),
    _members.map(ADSet.excluding),
)


@settings(max_examples=150, deadline=None)
@given(a=_adsets, b=_adsets, c=_adsets, x=st.integers(0, 7))
def test_adset_boolean_laws(a, b, c, x):
    """Distributivity and absorption -- what scope propagation composes."""
    lhs = a.intersect(b.union(c))
    rhs = a.intersect(b).union(a.intersect(c))
    assert lhs.matches(x) == rhs.matches(x)
    assert a.union(a.intersect(b)).matches(x) == a.matches(x)
    assert a.intersect(a.union(b)).matches(x) == a.matches(x)
