"""Tests for ORWG message wire-size models and the flooding message sizes."""


from repro.policy.flows import FlowSpec
from repro.policy.terms import PolicyTerm, TermRef
from repro.protocols.flooding import LinkRecord, LinkStateAd, LSDBExchange
from repro.protocols.orwg.messages import (
    DataPacket,
    FLOW_SPEC_BYTES,
    Handle,
    SetupAck,
    SetupNak,
    SetupPacket,
    TeardownPacket,
)
from repro.simul.messages import AD_ID_BYTES, HEADER_BYTES, Message


FLOW = FlowSpec(1, 9)
HANDLE = Handle(1, 7)


class TestSetupMessages:
    def test_setup_size_grows_with_route_and_refs(self):
        short = SetupPacket(HANDLE, FLOW, (1, 2, 9), (TermRef(2, 0),), 1)
        long = SetupPacket(
            HANDLE, FLOW, (1, 2, 3, 4, 9), (TermRef(2, 0), TermRef(3, 0), TermRef(4, 1)), 1
        )
        assert long.size_bytes() == short.size_bytes() + 2 * AD_ID_BYTES + 2 * 4

    def test_ack_and_teardown_sizes(self):
        route = (1, 2, 9)
        ack = SetupAck(HANDLE, route, 1)
        teardown = TeardownPacket(HANDLE, route, 1)
        assert ack.size_bytes() == teardown.size_bytes()
        assert ack.size_bytes() > HEADER_BYTES

    def test_nak_carries_reason(self):
        short = SetupNak(HANDLE, (1, 2, 9), 1, rejected_by=2, reason="x")
        long = SetupNak(HANDLE, (1, 2, 9), 1, rejected_by=2, reason="x" * 20)
        assert long.size_bytes() == short.size_bytes() + 19


class TestDataPacket:
    def test_handle_mode_header(self):
        pkt = DataPacket(HANDLE, FLOW, payload_bytes=100)
        assert pkt.header_bytes() == HEADER_BYTES + 4 + FLOW_SPEC_BYTES
        assert pkt.size_bytes() == pkt.header_bytes() + 100

    def test_datagram_mode_header_grows_with_route(self):
        short = DataPacket(HANDLE, FLOW, (1, 2, 9), 1)
        long = DataPacket(HANDLE, FLOW, (1, 2, 3, 4, 9), 1)
        assert long.header_bytes() == short.header_bytes() + 2 * AD_ID_BYTES

    def test_payload_excluded_from_header(self):
        a = DataPacket(HANDLE, FLOW, payload_bytes=1)
        b = DataPacket(HANDLE, FLOW, payload_bytes=1000)
        assert a.header_bytes() == b.header_bytes()
        assert b.size_bytes() - a.size_bytes() == 999


class TestFloodingMessages:
    def test_lsa_size_counts_links_and_terms(self):
        bare = LinkStateAd(origin=1, seq=1, links=())
        with_link = LinkStateAd(
            origin=1, seq=1, links=(LinkRecord(2, 1.0, 1.0, True),)
        )
        with_term = LinkStateAd(
            origin=1, seq=1, links=(), terms=(PolicyTerm(owner=1),)
        )
        assert with_link.size_bytes() == bare.size_bytes() + LinkRecord(
            2, 1.0, 1.0, True
        ).size_bytes()
        assert with_term.size_bytes() == bare.size_bytes() + PolicyTerm(
            owner=1
        ).size_bytes()

    def test_lsdb_exchange_shares_one_header(self):
        lsa = LinkStateAd(origin=1, seq=1, links=(LinkRecord(2, 1.0, 1.0, True),))
        exchange = LSDBExchange((lsa, lsa))
        assert exchange.size_bytes() == HEADER_BYTES + 2 * (
            lsa.size_bytes() - HEADER_BYTES
        )

    def test_base_message_header(self):
        assert Message().size_bytes() == HEADER_BYTES
        assert Message().type_name == "Message"
