"""Tests for hierarchical (corridor-pruned) route synthesis."""

import pytest

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.core.evaluation import legal_route_exists, sample_flows
from repro.core.hierarchical import (
    CORE_REGION,
    HierarchicalSynthesizer,
    build_super_graph,
    partition_by_region,
)
from repro.core.synthesis import synthesize_route
from repro.policy.generators import hierarchical_policies, restricted_policies
from repro.policy.legality import is_legal_path
from repro.policy.selection import RouteSelectionPolicy


class TestPartition:
    def test_small_hierarchy_regions(self, hierarchy):
        region = partition_by_region(hierarchy)
        assert region[0] == CORE_REGION
        # Each regional founds its own region with its campuses.
        assert region[1] == region[3] == region[4]
        assert region[2] == region[5] == region[6]
        assert region[1] != region[2]
        assert region[1] != CORE_REGION

    def test_total_coverage(self, gen_graph):
        region = partition_by_region(gen_graph)
        assert set(region) == set(gen_graph.ad_ids())

    def test_multihomed_claimed_once(self, gen_graph):
        region = partition_by_region(gen_graph)
        # A partition: every AD has exactly one region (dict guarantees),
        # and regions are non-empty.
        from collections import Counter

        counts = Counter(region.values())
        assert all(v >= 1 for v in counts.values())


class TestSuperGraph:
    def test_edges_cross_regions(self, hierarchy):
        region = partition_by_region(hierarchy)
        sg = build_super_graph(hierarchy, region)
        assert sg.has_edge(CORE_REGION, region[1])
        assert sg.has_edge(CORE_REGION, region[2])
        # The 1-2 regional lateral links the two regions directly.
        assert sg.has_edge(region[1], region[2])

    def test_down_links_ignored(self, hierarchy):
        hierarchy.set_link_status(1, 2, up=False)
        region = partition_by_region(hierarchy)
        sg = build_super_graph(hierarchy, region)
        assert not sg.has_edge(region[1], region[2])


class TestHierarchicalSynthesis:
    @pytest.fixture
    def setting(self):
        graph = generate_internet(
            TopologyConfig(
                num_backbones=2,
                regionals_per_backbone=3,
                campuses_per_parent=4,
                seed=77,
            )
        )
        policies = restricted_policies(graph, 0.3, seed=77).policies
        flows = sample_flows(graph, 30, seed=78)
        return graph, policies, flows

    def test_routes_are_legal(self, setting):
        graph, policies, flows = setting
        hs = HierarchicalSynthesizer(graph, policies)
        for flow in flows:
            route = hs.route(flow)
            if route is not None:
                assert is_legal_path(graph, policies, route.path, flow)

    def test_complete_with_fallback(self, setting):
        """With the fallback on, hierarchical synthesis finds a route
        exactly when one exists."""
        graph, policies, flows = setting
        hs = HierarchicalSynthesizer(graph, policies, fallback=True)
        for flow in flows:
            exists = legal_route_exists(graph, policies, flow)
            assert (hs.route(flow) is not None) == bool(exists)

    def test_prunes_search_work(self, setting):
        graph, policies, flows = setting
        from repro.core.synthesis import SynthesisStats

        flat = SynthesisStats()
        for flow in flows:
            synthesize_route(graph, policies, flow, stats=flat)
        hs = HierarchicalSynthesizer(graph, policies)
        for flow in flows:
            hs.route(flow)
        assert hs.stats.hit_ratio > 0.5
        # Corridor searches expand fewer states per hit than flat search
        # overall (fallbacks may erode but not erase the saving).
        assert hs.stats.synthesis.states_expanded < flat.states_expanded * 1.5

    def test_no_fallback_may_lose_routes_but_never_invents(self, setting):
        graph, policies, flows = setting
        hs = HierarchicalSynthesizer(graph, policies, fallback=False)
        for flow in flows:
            route = hs.route(flow)
            if route is not None:
                assert is_legal_path(graph, policies, route.path, flow)
            else:
                # Might be a corridor miss -- but never a false positive.
                pass

    def test_same_region_flow(self, hierarchy):
        from repro.policy.flows import FlowSpec

        policies = hierarchical_policies(hierarchy).policies
        hs = HierarchicalSynthesizer(hierarchy, policies)
        route = hs.route(FlowSpec(3, 4))
        assert route is not None
        assert route.path == (3, 1, 4)
        assert hs.stats.corridor_hits == 1

    def test_selection_criteria_respected(self, setting):
        graph, policies, flows = setting
        hs = HierarchicalSynthesizer(graph, policies)
        flow = next(
            f for f in flows if (r := hs.route(f)) is not None and r.hops >= 2
        )
        baseline = hs.route(flow)
        sel = RouteSelectionPolicy(avoid_ads=frozenset({baseline.path[1]}))
        alt = hs.route(flow, sel)
        if alt is not None:
            assert baseline.path[1] not in alt.path

    def test_invalid_args(self, hierarchy):
        policies = hierarchical_policies(hierarchy).policies
        with pytest.raises(ValueError):
            HierarchicalSynthesizer(hierarchy, policies, max_region_paths=0)


class TestRegionPathCandidates:
    @pytest.fixture
    def synth(self, hierarchy):
        return HierarchicalSynthesizer(
            hierarchy, hierarchical_policies(hierarchy).policies
        )

    def test_same_region_includes_core_hairpin(self, synth, hierarchy):
        region = synth.region
        candidates = synth._region_paths(region[3], region[4])
        assert (region[3],) in candidates
        # Hairpin through the core offered when adjacent.
        assert any(CORE_REGION in c for c in candidates)

    def test_cross_region_includes_via_core(self, synth):
        src_r = synth.region[3]
        dst_r = synth.region[5]
        candidates = synth._region_paths(src_r, dst_r)
        assert (src_r, CORE_REGION, dst_r) in candidates

    def test_union_candidate_last_and_superset(self, synth):
        src_r = synth.region[3]
        dst_r = synth.region[5]
        candidates = synth._region_paths(src_r, dst_r)
        union = candidates[-1]
        for c in candidates[:-1]:
            assert set(c) <= set(union)

    def test_disconnected_regions_no_candidates(self, hierarchy):
        # Cut both regionals off the backbone and each other: region of 3
        # cannot reach region of 5 at all.
        hierarchy.set_link_status(0, 2, up=False)
        hierarchy.set_link_status(1, 2, up=False)
        synth = HierarchicalSynthesizer(
            hierarchy, hierarchical_policies(hierarchy).policies
        )
        assert synth._region_paths(synth.region[3], synth.region[5]) == []

    def test_members_partition(self, synth, hierarchy):
        all_members = set()
        for rid in set(synth.region.values()):
            members = synth.members(rid)
            assert not (all_members & set(members))
            all_members |= set(members)
        assert all_members == set(hierarchy.ad_ids())

    def test_required_ad_outside_corridor_skips_to_fallback(self, synth, hierarchy):
        from repro.policy.flows import FlowSpec
        from repro.policy.selection import RouteSelectionPolicy

        # Require an AD in the *other* region: the intra-region corridor
        # cannot satisfy it, but the search must still find the detour.
        sel = RouteSelectionPolicy(require_ads=frozenset({2}))
        route = synth.route(FlowSpec(3, 4), sel)
        if route is not None:
            assert 2 in route.path
