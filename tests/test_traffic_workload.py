"""Tests for zipf workload generation: determinism, skew, shape."""

import pytest

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.traffic.workload import WorkloadSpec, zipf_workload
from tests.helpers import line_graph


@pytest.fixture(scope="module")
def graph():
    return generate_internet(TopologyConfig(seed=42))


class TestSpec:
    def test_inactive_default(self):
        spec = WorkloadSpec()
        assert not spec.active
        assert spec.display == "none"

    def test_display(self):
        spec = WorkloadSpec(flows=1_000_000, zipf_s=1.1)
        assert spec.active
        assert spec.display == "1000000f/s=1.1"

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            zipf_workload(graph, WorkloadSpec(flows=-1))
        with pytest.raises(ValueError):
            zipf_workload(graph, WorkloadSpec(flows=10, zipf_s=-0.5))


class TestGeneration:
    def test_columnar_shape(self, graph):
        wl = zipf_workload(graph, WorkloadSpec(flows=5000, pairs=64, seed=3))
        assert len(wl) == 5000
        assert len(wl.sizes) == 5000
        assert wl.num_classes <= 64
        assert sum(wl.class_counts) == 5000
        assert all(0 <= idx < wl.num_classes for idx in wl.class_of)
        assert wl.total_bytes >= 64 * 5000  # sizes respect the floor

    def test_deterministic(self, graph):
        spec = WorkloadSpec(flows=20_000, pairs=128, seed=9)
        a = zipf_workload(graph, spec)
        b = zipf_workload(graph, spec)
        assert a.classes == b.classes
        assert a.class_of == b.class_of
        assert a.sizes == b.sizes

    def test_seed_changes_draws(self, graph):
        a = zipf_workload(graph, WorkloadSpec(flows=20_000, pairs=128, seed=1))
        b = zipf_workload(graph, WorkloadSpec(flows=20_000, pairs=128, seed=2))
        assert a.class_of != b.class_of

    def test_zipf_skew(self, graph):
        """Higher s concentrates traffic: the head carries more flows."""
        flat = zipf_workload(
            graph, WorkloadSpec(flows=50_000, pairs=256, zipf_s=0.0, seed=4)
        )
        skewed = zipf_workload(
            graph, WorkloadSpec(flows=50_000, pairs=256, zipf_s=1.5, seed=4)
        )
        assert skewed.head_share(10) > flat.head_share(10)
        assert skewed.head_share(10) > 0.3

    def test_rank_order(self, graph):
        """classes[0] really is the most popular class at real skew."""
        wl = zipf_workload(
            graph, WorkloadSpec(flows=100_000, pairs=64, zipf_s=1.2, seed=5)
        )
        assert wl.class_counts[0] == max(wl.class_counts)

    def test_pairs_clamped_to_universe(self):
        """Tiny graphs cap the class universe at every ordered pair."""
        g = line_graph(3)
        wl = zipf_workload(g, WorkloadSpec(flows=1000, pairs=4096, seed=6))
        assert wl.num_classes <= 3 * 2
        srcs_dsts = {(f.src, f.dst) for f in wl.classes}
        assert len(srcs_dsts) == wl.num_classes  # all distinct

    def test_empty_workload(self, graph):
        wl = zipf_workload(graph, WorkloadSpec(flows=0))
        assert len(wl) == 0
        assert wl.head_share() == 0.0
        assert wl.total_bytes == 0

    def test_iter_flows_matches_columns(self, graph):
        wl = zipf_workload(graph, WorkloadSpec(flows=500, pairs=32, seed=7))
        flows = list(wl.iter_flows())
        assert len(flows) == 500
        for (flow, size), idx, sz in zip(flows, wl.class_of, wl.sizes):
            assert flow is wl.classes[idx]
            assert size == sz
