"""Supervised node lifecycle on the live substrate.

The supervisor is the live substrate's init system: dead serve tasks
are detected and restarted with exponential backoff, crash-looping
nodes exhaust a bounded budget and fail the run loudly, and rolling
restarts sweep the topology hitlessly.  Every await here is
deadline-guarded -- no live test may hang.
"""

import asyncio

import pytest

from repro.live import LiveNetwork, NodeState, settle
from repro.live.supervisor import Supervisor, SupervisorConfig
from repro.policy.flows import FlowSpec
from repro.policy.generators import open_policies
from repro.protocols.registry import make_protocol

from .helpers import mk_graph

TIME_SCALE = 0.002
#: Hard wall-clock budget for any one scenario; generous next to the
#: few seconds a healthy run takes, tight next to a hang.
SCENARIO_BUDGET_S = 60.0


def ring8():
    return mk_graph(
        [(i, "Rt") for i in range(8)],
        [(i, (i + 1) % 8) for i in range(8)],
    )


def _run(coro):
    """Run one scenario under the hard wall-clock budget."""

    async def bounded():
        return await asyncio.wait_for(coro, timeout=SCENARIO_BUDGET_S)

    return asyncio.run(bounded())


async def _converged_network(graph):
    proto = make_protocol(
        "plain-ls", graph, open_policies(graph).policies, substrate="live"
    )
    network = LiveNetwork(proto.graph, time_scale=TIME_SCALE)
    proto.build(network=network)
    await network.start()
    assert await settle(network, idle_window_s=0.05, timeout_s=30.0)
    return proto, network


def _all_routes(proto):
    ads = sorted(proto.graph.ad_ids())
    return {
        (s, d): proto.find_route(FlowSpec(src=s, dst=d))
        for s in ads
        for d in ads
        if s != d
    }


async def _wait_for(predicate, timeout_s, what):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not predicate():
        if loop.time() >= deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.01)


# -------------------------------------------------------------- recovery


def test_supervisor_restarts_dead_serve_task():
    async def scenario():
        proto, network = await _converged_network(ring8())
        supervisor = Supervisor(network, SupervisorConfig(seed=1))
        await supervisor.start()
        try:
            routes_before = _all_routes(proto)
            victim = network._runtimes[3]
            victim.task.cancel()
            await _wait_for(
                lambda: victim.restarts >= 1, 10.0, "supervised restart"
            )
            assert victim.state is NodeState.SERVING
            assert not victim.task.done()
            assert supervisor.restart_counts[3] == 1
            assert supervisor.events[0]["reason"].startswith("dead task")
            assert await settle(network, idle_window_s=0.05, timeout_s=30.0)
            # The node's state and socket survived: nothing reconverged.
            assert _all_routes(proto) == routes_before
        finally:
            await supervisor.stop()
            await network.close()

    _run(scenario())


def test_supervisor_recovers_crash_looping_node_within_budget():
    async def scenario():
        proto, network = await _converged_network(ring8())
        supervisor = Supervisor(
            network,
            SupervisorConfig(seed=2, backoff_initial_s=0.01, max_restarts=5),
        )
        await supervisor.start()
        try:
            victim = network._runtimes[5]
            for wave in range(1, 4):  # 3 crashes: inside the budget of 5
                victim.task.cancel()
                await _wait_for(
                    lambda: victim.restarts >= wave,
                    10.0,
                    f"recovery {wave}",
                )
            assert supervisor.restart_counts[5] == 3
            assert 5 not in supervisor.given_up
            # Backoff grew monotonically across the crash loop.
            delays = [
                ev["delay"] for ev in supervisor.events if "delay" in ev
            ]
            assert delays == sorted(delays)
            assert await settle(network, idle_window_s=0.05, timeout_s=30.0)
        finally:
            await supervisor.stop()
            await network.close()

    _run(scenario())


def test_budget_exhaustion_fails_the_run_loudly():
    async def scenario():
        proto, network = await _converged_network(ring8())
        supervisor = Supervisor(
            network,
            SupervisorConfig(seed=3, backoff_initial_s=0.01, max_restarts=1),
        )
        await supervisor.start()
        try:
            victim = network._runtimes[2]
            victim.task.cancel()
            await _wait_for(
                lambda: victim.restarts >= 1, 10.0, "first recovery"
            )
            victim.task.cancel()
            await _wait_for(
                lambda: 2 in supervisor.given_up, 10.0, "budget exhaustion"
            )
            assert supervisor.events[-1]["gave_up"] is True
            assert "gave up on AD 2" in str(network.errors[0])
            with pytest.raises(RuntimeError, match="serve-task failure"):
                await settle(network, idle_window_s=0.05, timeout_s=5.0)
        finally:
            await supervisor.stop()
            await network.close()

    _run(scenario())


def test_hung_task_detected_by_heartbeat():
    async def scenario():
        proto, network = await _converged_network(ring8())
        loop = asyncio.get_running_loop()
        victim = network._runtimes[4]
        # Wedge the node before supervision starts: its serve task is
        # replaced by one that never drains the queue, then a real
        # frame arrives and sits there.
        victim.task.cancel()
        try:
            await victim.task
        except asyncio.CancelledError:
            pass
        victim.task = loop.create_task(asyncio.sleep(3600))
        victim.last_progress = loop.time() - 10.0
        from repro.protocols.egp import NRAck

        network.send(3, 4, NRAck(seq=1))
        await _wait_for(lambda: victim.unprocessed > 0, 10.0, "frame queued")
        supervisor = Supervisor(
            network,
            SupervisorConfig(seed=4, heartbeat_s=0.2, backoff_initial_s=0.01),
        )
        await supervisor.start()
        try:
            await _wait_for(
                lambda: victim.restarts >= 1, 10.0, "hung-task recovery"
            )
            assert any(
                str(ev["reason"]).startswith("hung")
                for ev in supervisor.events
            )
            # The stuck frame was flushed and accounted, not stranded.
            assert network.metrics.queue_dropped >= 1
            assert await settle(network, idle_window_s=0.05, timeout_s=30.0)
        finally:
            await supervisor.stop()
            await network.close()

    _run(scenario())


# --------------------------------------------------------------- rolling


def test_rolling_restart_is_hitless():
    async def scenario():
        proto, network = await _converged_network(ring8())
        supervisor = Supervisor(network, SupervisorConfig(seed=5))
        await supervisor.start()
        try:
            routes_before = _all_routes(proto)
            restarted = await supervisor.rolling_restart(dwell_s=0.01)
            assert restarted == 8
            # Orchestrated restarts are not charged to the crash budget.
            assert supervisor.restart_counts == {}
            assert all(
                rt.restarts == 1 for rt in network._runtimes.values()
            )
            assert await settle(network, idle_window_s=0.05, timeout_s=30.0)
            assert _all_routes(proto) == routes_before
        finally:
            await supervisor.stop()
            await network.close()

    _run(scenario())


def test_rolling_restart_never_charges_the_crash_budget():
    async def scenario():
        proto, network = await _converged_network(ring8())
        supervisor = Supervisor(
            network,
            SupervisorConfig(seed=6, backoff_initial_s=0.01, max_restarts=2),
        )
        await supervisor.start()
        try:
            # Spend the victim's entire crash budget on real crashes.
            victim = network._runtimes[3]
            for wave in range(1, 3):
                victim.task.cancel()
                await _wait_for(
                    lambda: victim.restarts >= wave, 10.0, f"recovery {wave}"
                )
            assert supervisor.restart_counts[3] == 2
            assert 3 not in supervisor.given_up

            # A full sweep right at the budget boundary: if orchestrated
            # restarts were charged like crashes, AD 3 would blow its
            # budget here and the run would be declared lost.
            restarted = await supervisor.rolling_restart(dwell_s=0.01)
            assert restarted == 8
            assert supervisor.restart_counts == {3: 2}
            assert supervisor.given_up == set()
            sweeps = [
                ev
                for ev in supervisor.events
                if ev["reason"] == "rolling restart"
            ]
            assert len(sweeps) == 8
            assert all(ev["gave_up"] is False for ev in sweeps)
            assert await settle(network, idle_window_s=0.05, timeout_s=30.0)
        finally:
            await supervisor.stop()
            await network.close()

    _run(scenario())


# ---------------------------------------------------------- settle contract


def test_settle_timeout_carries_per_ad_diagnostics():
    async def scenario():
        from repro.live.runner import SettleTimeout, try_settle
        from repro.protocols.egp import NRAck

        proto, network = await _converged_network(ring8())
        supervisor = Supervisor(
            network,
            # A heartbeat far past the settle timeout: the wedged node
            # must still be wedged when settle gives up.
            SupervisorConfig(seed=7, heartbeat_s=60.0, max_restarts=5),
        )
        await supervisor.start()
        try:
            loop = asyncio.get_running_loop()
            victim = network._runtimes[4]
            victim.task.cancel()
            try:
                await victim.task
            except asyncio.CancelledError:
                pass
            # Alive but never draining: the queued frame keeps the
            # network non-idle for as long as settle cares to wait.
            victim.task = loop.create_task(asyncio.sleep(3600))
            victim.last_progress = loop.time()
            network.send(3, 4, NRAck(seq=1))
            await _wait_for(
                lambda: victim.unprocessed > 0, 10.0, "frame queued"
            )

            with pytest.raises(SettleTimeout) as exc:
                await settle(network, idle_window_s=0.05, timeout_s=0.5)
            message = str(exc.value)
            assert "failed to settle within 0.5s" in message
            assert "AD 4:" in message
            assert "unprocessed=1" in message
            assert "restart_budget_remaining=5" in message
            # Healthy ADs are elided, not listed one line each.
            assert "AD 0:" not in message
            # Measurement paths see the same condition as data.
            assert not await try_settle(
                network, idle_window_s=0.05, timeout_s=0.5
            )
        finally:
            await supervisor.stop()
            await network.close()

    _run(scenario())


def test_settle_raises_on_dead_task_without_supervisor():
    async def scenario():
        proto, network = await _converged_network(ring8())
        try:
            task = network._runtimes[6].task
            task.cancel()
            try:
                await task  # the cancellation must land before settle looks
            except asyncio.CancelledError:
                pass
            with pytest.raises(RuntimeError, match="without a supervisor"):
                await settle(network, idle_window_s=0.05, timeout_s=5.0)
        finally:
            await network.close()

    _run(scenario())


def test_supervisor_start_twice_rejected_and_stop_detaches():
    async def scenario():
        proto, network = await _converged_network(ring8())
        supervisor = Supervisor(network)
        await supervisor.start()
        try:
            assert network.supervisor is supervisor
            with pytest.raises(RuntimeError, match="already started"):
                await supervisor.start()
        finally:
            await supervisor.stop()
            assert network.supervisor is None
            await network.close()

    _run(scenario())


# ------------------------------------------------------- lifecycle edges


def test_draining_runtime_drops_new_frames_then_stops():
    async def scenario():
        proto, network = await _converged_network(ring8())
        try:
            rt = network._runtimes[0]
            assert rt.state is NodeState.SERVING
            await rt.drain()
            assert rt.state is NodeState.DRAINING
            dropped_before = network.metrics.dropped
            rt.enqueue(b"late frame")
            assert network.metrics.dropped == dropped_before + 1
            assert rt.unprocessed == 0  # never admitted
            await rt.stop()
            assert rt.state is NodeState.STOPPED
            await rt.stop()  # idempotent
            assert rt.state is NodeState.STOPPED
        finally:
            await network.close()

    _run(scenario())


def test_timer_fired_during_drain_is_harmless():
    async def scenario():
        proto, network = await _converged_network(ring8())
        try:
            fired = []
            handle = network.clock.call_later(1.0, fired.append, "tick")
            rt = network._runtimes[1]
            await rt.drain()
            await asyncio.sleep(5 * TIME_SCALE)
            assert fired == ["tick"]
            # Cancel-after-fire stays a no-op even across a drain.
            handle.cancel()
            assert network.clock.pending_timers == 0
        finally:
            await network.close()

    _run(scenario())


def test_restart_task_preserves_socket_and_counts():
    async def scenario():
        proto, network = await _converged_network(ring8())
        try:
            port_before = network.port_of(7)
            lost = await network.restart_runtime(7)
            assert lost == 0  # queue was idle
            stats = network.runtime_stats(7)
            assert stats["restarts"] == 1
            assert stats["state"] is NodeState.SERVING
            assert network.port_of(7) == port_before
            assert await settle(network, idle_window_s=0.05, timeout_s=30.0)
        finally:
            await network.close()

    _run(scenario())


# ----------------------------------------------------------- send machinery


def test_send_retry_then_success_counts_retries():
    async def scenario():
        proto, network = await _converged_network(ring8())
        try:
            # Crash the receiver so the delivered frame is dropped at
            # dispatch instead of reaching a node that never asked for
            # an NRAck; what's under test is the sender's retry path.
            network.crash_node(1)
            rt = network._runtimes[0]
            real_sendto = rt.transport.sendto
            failures = [2]  # fail twice, then deliver

            def flaky(data, addr):
                if failures[0] > 0:
                    failures[0] -= 1
                    raise BlockingIOError("kernel buffer full")
                real_sendto(data, addr)

            rt.transport.sendto = flaky
            from repro.protocols.egp import NRAck

            sent_before = network.frames_sent
            network.send(0, 1, NRAck(seq=7))
            await _wait_for(
                lambda: network.frames_sent == sent_before + 1,
                10.0,
                "retried hand-off",
            )
            assert network.metrics.live_send_retries == 2
            assert network.metrics.live_send_drops == 0
            assert network._pending_sends == 0
        finally:
            await network.close()

    _run(scenario())


def test_send_retry_budget_exhaustion_drops_and_stays_idle():
    async def scenario():
        proto, network = await _converged_network(ring8())
        try:
            rt = network._runtimes[0]

            def always_full(data, addr):
                raise BlockingIOError("kernel buffer full")

            rt.transport.sendto = always_full
            from repro.protocols.egp import NRAck

            network.send(0, 1, NRAck(seq=8))
            await _wait_for(
                lambda: network.metrics.live_send_drops == 1,
                10.0,
                "send-drop accounting",
            )
            # The dropped send left no phantom in-flight frame behind:
            # the network still reaches quiescence.
            assert network._pending_sends == 0
            assert await settle(network, idle_window_s=0.05, timeout_s=10.0)
        finally:
            await network.close()

    _run(scenario())


def test_recv_loss_is_seeded_and_validated():
    async def scenario():
        proto, network = await _converged_network(ring8())
        try:
            with pytest.raises(ValueError, match="outside"):
                network.set_recv_loss(1.5)
            network.set_recv_loss(1.0, seed=9)
            from repro.protocols.egp import NRAck

            dropped_before = network.metrics.channel_dropped
            network.send(0, 1, NRAck(seq=9))
            await _wait_for(
                lambda: network.metrics.channel_dropped
                == dropped_before + 1,
                10.0,
                "recv-loss drop",
            )
            network.set_recv_loss(0.0)
            assert await settle(network, idle_window_s=0.05, timeout_s=10.0)
        finally:
            await network.close()

    _run(scenario())
