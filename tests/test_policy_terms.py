"""Tests for Policy Terms."""

import pytest

from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.sets import ADSet, TimeWindow
from repro.policy.terms import PolicyTerm, TermRef
from repro.policy.uci import UCI


def flow(**kw):
    defaults = dict(src=1, dst=9, qos=QOS.DEFAULT, uci=UCI.DEFAULT, hour=12)
    defaults.update(kw)
    return FlowSpec(**defaults)


class TestPermits:
    def test_open_term_permits_everything(self):
        t = PolicyTerm(owner=5)
        assert t.is_open
        assert t.permits(flow(), prev=2, nxt=3)

    def test_source_constraint(self):
        t = PolicyTerm(owner=5, sources=ADSet.of([1, 2]))
        assert t.permits(flow(src=1), 2, 3)
        assert not t.permits(flow(src=7), 2, 3)

    def test_dest_constraint(self):
        t = PolicyTerm(owner=5, dests=ADSet.excluding([9]))
        assert not t.permits(flow(dst=9), 2, 3)
        assert t.permits(flow(dst=8), 2, 3)

    def test_prev_next_constraints(self):
        t = PolicyTerm(owner=5, prev_ads=ADSet.of([2]), next_ads=ADSet.of([3]))
        assert t.permits(flow(), 2, 3)
        assert not t.permits(flow(), 4, 3)
        assert not t.permits(flow(), 2, 4)

    def test_qos_constraint(self):
        t = PolicyTerm(owner=5, qos_classes=frozenset({QOS.LOW_COST}))
        assert t.permits(flow(qos=QOS.LOW_COST), 2, 3)
        assert not t.permits(flow(qos=QOS.DEFAULT), 2, 3)

    def test_uci_constraint(self):
        t = PolicyTerm(owner=5, ucis=frozenset({UCI.RESEARCH}))
        assert t.permits(flow(uci=UCI.RESEARCH), 2, 3)
        assert not t.permits(flow(uci=UCI.COMMERCIAL), 2, 3)

    def test_time_window(self):
        t = PolicyTerm(owner=5, window=TimeWindow(22, 6))
        assert t.permits(flow(hour=23), 2, 3)
        assert not t.permits(flow(hour=12), 2, 3)

    def test_all_dimensions_conjunct(self):
        t = PolicyTerm(
            owner=5,
            sources=ADSet.of([1]),
            qos_classes=frozenset({QOS.DEFAULT}),
            window=TimeWindow(10, 14),
        )
        assert t.permits(flow(src=1, hour=12), 2, 3)
        assert not t.permits(flow(src=1, hour=15), 2, 3)
        assert not t.permits(flow(src=2, hour=12), 2, 3)


class TestMatchesExceptSource:
    def test_ignores_sources(self):
        t = PolicyTerm(owner=5, sources=ADSet.of([1]))
        assert t.matches_except_source(9, 2, 3, QOS.DEFAULT, UCI.DEFAULT, 12)

    def test_still_checks_other_dimensions(self):
        t = PolicyTerm(owner=5, dests=ADSet.of([8]))
        assert not t.matches_except_source(9, 2, 3, QOS.DEFAULT, UCI.DEFAULT, 12)
        t2 = PolicyTerm(owner=5, next_ads=ADSet.of([4]))
        assert not t2.matches_except_source(9, 2, 3, QOS.DEFAULT, UCI.DEFAULT, 12)
        assert t2.matches_except_source(9, 2, 4, QOS.DEFAULT, UCI.DEFAULT, 12)


class TestMisc:
    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            PolicyTerm(owner=1, charge=-1.0)

    def test_ref(self):
        t = PolicyTerm(owner=5, term_id=2)
        assert t.ref == TermRef(5, 2)
        assert t.ref.size_bytes() == 4

    def test_size_bytes_grows_with_constraints(self):
        open_term = PolicyTerm(owner=5)
        narrow = PolicyTerm(owner=5, sources=ADSet.of(range(10)))
        assert narrow.size_bytes() > open_term.size_bytes()

    def test_is_open_false_when_constrained(self):
        assert not PolicyTerm(owner=1, ucis=frozenset({UCI.DEFAULT})).is_open
        assert not PolicyTerm(owner=1, window=TimeWindow(1, 2)).is_open
