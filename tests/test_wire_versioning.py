"""Version-skew tolerance: config, shims, negotiation, and the E16 driver.

The wire-versioning stack has three layers, tested bottom-up here:

* codec shims (:mod:`repro.simul.wire`): down-emit for old peers,
  lenient decode of newer frames, loud rejection of unsupported
  envelope versions;
* HELLO negotiation (:mod:`repro.protocols.versioning` plus the node
  hooks): a mixed population settles every pair on the highest mutually
  supported version, an unsupported peer is quarantined and never
  believed, and routing is bit-for-bit indifferent to all of it;
* the E16 harness driver (``execute_version_cell``): rolling upgrade
  waves with a rollback leg, recorded deterministically.
"""

import json

import pytest

from repro.harness import run_experiment
from repro.harness.chaos import execute_version_cell, routes_digest
from repro.harness.record import SCHEMA_VERSION, RunRecord
from repro.harness.spec import (
    Cell,
    FailureSpec,
    FaultSpec,
    MisbehaviorSpec,
    ProtocolSpec,
    ScenarioSpec,
    TrafficSpec,
)
from repro.protocols.flooding import LinkRecord, LinkStateAd
from repro.protocols.registry import make_protocol
from repro.protocols.versioning import (
    DEFAULT_WIRE,
    Hello,
    WireConfig,
    wire_from,
)
from repro.simul.metrics import MetricsCollector
from repro.simul.wire import (
    MIN_WIRE_VERSION,
    WIRE_VERSION,
    WireError,
    WireVersionError,
    decode_frame_ex,
    encode_frame,
    from_wire,
    to_wire,
)

from .helpers import mk_graph, open_db


def ring8():
    return mk_graph(
        [(i, "Rt") for i in range(8)],
        [(i, (i + 1) % 8) for i in range(8)],
    )


def _proto(wire=None, **options):
    graph = ring8()
    if wire is not None:
        options["wire"] = wire
    return make_protocol("plain-ls", graph, open_db(graph), **options)


# ------------------------------------------------------------- WireConfig


def test_wire_from_spellings():
    assert wire_from(None) is DEFAULT_WIRE
    assert wire_from("current") == DEFAULT_WIRE
    cfg = wire_from("v1+negotiate")
    assert (cfg.version, cfg.negotiate) == (1, True)
    assert wire_from(cfg) is cfg
    assert wire_from("negotiate") == WireConfig(negotiate=True)
    assert wire_from(1).version == 1
    with pytest.raises(ValueError, match="unknown wire spec part"):
        wire_from("v1+bogus")
    with pytest.raises(TypeError):
        wire_from(1.5)


def test_wire_config_validation_and_helpers():
    with pytest.raises(ValueError, match="outside supported range"):
        WireConfig(version=WIRE_VERSION + 1)
    with pytest.raises(ValueError, match="min_version"):
        WireConfig(version=WIRE_VERSION, min_version=WIRE_VERSION + 1)
    assert not DEFAULT_WIRE.any_enabled
    assert WireConfig(negotiate=True).any_enabled
    assert WireConfig(version=1).any_enabled
    pinned = WireConfig(version=2, min_version=2).at_version(1)
    assert (pinned.version, pinned.min_version) == (1, 1)
    assert WireConfig(version=1, negotiate=True).describe() == "v1+negotiate"


# ------------------------------------------------------------ codec shims


def test_v1_down_emit_omits_post_v1_fields_and_stamp():
    hello = Hello(version=2, min_version=1, capabilities=("resync",))
    v1 = to_wire(hello, version=1)
    assert "r" not in v1
    assert "capabilities" not in v1["f"]
    # The old-frame read shim: the missing field takes its default.
    assert from_wire(v1).capabilities == ()
    v2 = to_wire(hello, version=2)
    assert v2["r"] == 2
    assert from_wire(v2) == hello


def test_lenient_decode_drops_unknown_fields_strict_rejects():
    data = to_wire(Hello(version=2, min_version=1))
    data["f"]["from_the_future"] = 123
    assert from_wire(data, lenient=True) == Hello(version=2, min_version=1)
    with pytest.raises(WireError, match="no fields"):
        from_wire(data)


def test_to_wire_rejects_unsupported_target_version():
    with pytest.raises(WireVersionError):
        to_wire(Hello(version=2, min_version=1), version=WIRE_VERSION + 1)
    with pytest.raises(WireVersionError):
        encode_frame(1, 2, Hello(version=2, min_version=1), version=0)


def _doctored_frame(envelope_version):
    frame = encode_frame(3, 4, Hello(version=2, min_version=1), version=2)
    body = json.loads(frame[4:])
    body["v"] = envelope_version
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return len(payload).to_bytes(4, "big") + payload


@pytest.mark.parametrize("bad", [0, WIRE_VERSION + 97, True, "2"])
def test_decode_frame_ex_rejects_unsupported_envelopes(bad):
    with pytest.raises(WireVersionError) as exc:
        decode_frame_ex(_doctored_frame(bad))
    # The error carries the claimed sender so the receiving substrate
    # can quarantine the peer instead of dropping anonymous garbage.
    assert exc.value.src == 3
    assert exc.value.version == bad


def test_decode_frame_ex_missing_v_means_version_1():
    frame = encode_frame(3, 4, Hello(version=2, min_version=1), version=1)
    src, dst, msg, version = decode_frame_ex(frame)
    assert (src, dst, version) == (3, 4, 1)
    assert msg.capabilities == ()


def test_v1_frames_stay_strict():
    # Lenient decode is an explicitly versioned (v2+) behaviour; the
    # legacy envelope keeps the original closed-vocabulary strictness.
    frame = encode_frame(3, 4, Hello(version=2, min_version=1), version=1)
    body = json.loads(frame[4:])
    body["m"]["f"]["from_the_future"] = 1
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    with pytest.raises(WireError, match="no fields"):
        decode_frame_ex(len(payload).to_bytes(4, "big") + payload)


# ------------------------------------------------------- sim negotiation


def test_negotiation_is_invisible_to_routing():
    base = _proto()
    base.converge()
    neg = _proto("v1+negotiate")
    neg.converge()
    assert routes_digest(neg) == routes_digest(base)

    # Default config schedules zero extra events: no Hello ever flows.
    base_snap = base.network.metrics.snapshot(base.network.sim.now)
    assert "Hello" not in base_snap.messages
    assert base_snap.negotiated_versions == {}

    snap = neg.network.metrics.snapshot(neg.network.sim.now)
    assert snap.messages["Hello"] >= 16
    assert snap.version_rejected == 0
    # Every directed adjacency of the 8-ring negotiated the only
    # version a v1 population can speak.
    assert len(snap.negotiated_versions) == 16
    assert set(snap.negotiated_versions.values()) == {1}
    summary = neg.negotiation_summary()
    assert summary == {
        "nodes": {"v1": 8},
        "pairs": {"v1": 16},
        "blocked_pairs": 0,
        "version_drops": 0,
    }


def test_pre_negotiation_tx_uses_min_version():
    proto = _proto("negotiate")
    network = proto.build()
    node = network.nodes[0]
    # Before the handshake the only provably safe revision is the min.
    assert node.wire_tx_version(1) == node.wire.min_version == MIN_WIRE_VERSION
    proto.converge()
    assert node.wire_tx_version(1) == WIRE_VERSION


def test_mixed_population_interops_and_upgrades_cleanly():
    proto = _proto("v1+negotiate")
    proto.converge()
    network = proto.network
    baseline = routes_digest(proto)
    ads = sorted(network.nodes)
    upgraded = set(ads[:4])

    for ad in sorted(upgraded):
        proto.set_wire_version(ad, WIRE_VERSION)
    network.run(max_events=200_000, raise_on_limit=False)

    summary = proto.negotiation_summary()
    assert summary["nodes"] == {"v1": 4, f"v{WIRE_VERSION}": 4}
    assert summary["blocked_pairs"] == 0
    assert summary["version_drops"] == 0
    # Each pair sits at the highest *mutually* supported version: v2
    # between two upgraded ADs, v1 whenever a v1 node is involved.
    for node in network.nodes.values():
        for peer, version in node.negotiated.items():
            both_new = node.ad_id in upgraded and peer in upgraded
            assert version == (WIRE_VERSION if both_new else 1)
    assert routes_digest(proto) == baseline

    for ad in ads[4:]:
        proto.set_wire_version(ad, WIRE_VERSION)
    network.run(max_events=200_000, raise_on_limit=False)
    summary = proto.negotiation_summary()
    assert summary["nodes"] == {f"v{WIRE_VERSION}": 8}
    assert summary["pairs"] == {f"v{WIRE_VERSION}": 16}
    assert routes_digest(proto) == baseline


def test_unsupported_peer_is_quarantined_and_never_believed():
    proto = _proto("negotiate", validation="all")
    proto.converge()
    network = proto.network
    node = network.nodes[0]
    baseline = routes_digest(proto)
    rejected_before = network.metrics.snapshot(network.sim.now).version_rejected

    # A peer from the future: its advertised range has no overlap with
    # ours, so negotiation must fail loudly.
    node.receive(1, Hello(version=99, min_version=99))
    assert 1 in node.version_blocked
    assert 1 not in node.negotiated
    event = node.guard.quarantine_events[-1]
    assert event.neighbor == 1
    assert "unsupported wire version" in event.reason

    # Control traffic from the blocked peer is dropped before any
    # protocol code can believe it: a forged LSA changes nothing.
    forged = LinkStateAd(
        origin=1,
        seq=9_999,
        links=(LinkRecord(neighbor=0, delay=0.001, cost=0.001, up=True),),
    )
    node.receive(1, forged)
    assert node.version_drops == 1
    assert routes_digest(proto) == baseline
    snap = network.metrics.snapshot(network.sim.now)
    assert snap.version_rejected >= rejected_before + 2

    # Recovery is symmetric: a sane re-advertisement unblocks the pair.
    node.receive(1, Hello(version=WIRE_VERSION, min_version=MIN_WIRE_VERSION))
    assert 1 not in node.version_blocked
    assert node.negotiated[1] == WIRE_VERSION


def test_metrics_delta_carries_negotiation_state():
    m = MetricsCollector()
    m.count_version_reject()
    earlier = m.snapshot(1.0)
    m.count_version_reject()
    m.note_negotiated(3, 4, 2)
    later = m.snapshot(2.0)
    delta = later.delta(earlier)
    # Counters subtract; the census is state and rides the later side.
    assert delta.version_rejected == 1
    assert delta.negotiated_versions == {"3>4": 2}


# ---------------------------------------------------------- E16 driver


def _version_cell(protocol=None, fault=None, *, substrate="sim",
                  misbehavior=MisbehaviorSpec()):
    return Cell(
        experiment="version-test",
        index=0,
        scenario=ScenarioSpec(kind="ring", seed=0, num_flows=12),
        protocol=protocol
        or ProtocolSpec(
            "plain-ls",
            label="plain-ls+v1",
            options=(("wire", "v1+negotiate"),),
        ),
        failure=FailureSpec(),
        fault=fault or FaultSpec(upgrade_waves=2, rollback=True, seed=3),
        misbehavior=misbehavior,
        traffic=TrafficSpec(flows=2000, pairs=64, seed=3),
        substrate=substrate,
    )


@pytest.fixture(scope="module")
def version_record():
    return execute_version_cell(_version_cell())


def test_fault_spec_versioned_display():
    fault = FaultSpec(upgrade_waves=3, rollback=True, seed=1)
    assert fault.versioned and not fault.chaotic and not fault.active
    assert fault.display == "waves=3,rollback"
    assert FaultSpec().display == "none"


def test_version_record_shape(version_record):
    v = version_record.versioning
    assert version_record.chaos is None
    assert (v["upgrade_waves"], v["rollback"]) == (2, True)
    assert v["wire_start"] == 1
    assert v["wire_target"] == WIRE_VERSION
    # 2 upgrade waves + the rollback leg + the re-upgrade leg.
    assert len(v["waves"]) == 4
    assert [w["label"] for w in v["waves"]][-2:] == [
        "rollback -> v1",
        f"re-upgrade -> v{WIRE_VERSION}",
    ]
    assert v["supervisor"] is None  # sim has no supervisor


def test_version_record_population_converges(version_record):
    v = version_record.versioning
    census = v["negotiation"]
    assert census["blocked_pairs"] == 0
    assert census["version_drops"] == 0
    assert set(census["nodes"]) == {f"v{WIRE_VERSION}"}
    assert set(census["pairs"]) == {f"v{WIRE_VERSION}"}
    assert v["version_rejected"] == 0
    # The fidelity anchor: every wave settles back onto the baseline
    # routes, and the final state matches bit for bit.
    assert all(w["digest_match"] for w in v["waves"])
    assert all(w["quiesced"] for w in v["waves"])
    assert v["routes_digest"] == v["baseline_digest"]
    assert v["digest_stable"] is True


def test_version_cell_is_deterministic(version_record):
    again = execute_version_cell(_version_cell())
    assert again.comparable() == version_record.comparable()


def test_version_record_roundtrips_and_v7_shim(version_record):
    line = version_record.to_json()
    assert RunRecord.from_json(line).comparable() == version_record.comparable()
    data = json.loads(line)
    assert data["schema_version"] == SCHEMA_VERSION
    data["schema_version"] = 7
    del data["versioning"]
    old = RunRecord.from_json(json.dumps(data))
    assert old.versioning is None


def test_version_cell_rejections():
    with pytest.raises(ValueError, match="no upgrade program"):
        execute_version_cell(_version_cell(fault=FaultSpec(seed=3)))
    with pytest.raises(ValueError, match="misbehavior"):
        execute_version_cell(
            _version_cell(misbehavior=MisbehaviorSpec(lie="reachability"))
        )
    with pytest.raises(ValueError, match="chaos/churn/queue"):
        execute_version_cell(
            _version_cell(
                fault=FaultSpec(upgrade_waves=2, restarts=1, seed=3)
            )
        )
    with pytest.raises(ValueError, match="loss impairments only"):
        execute_version_cell(
            _version_cell(
                fault=FaultSpec(upgrade_waves=2, dup=0.1, seed=3),
                substrate="live",
            )
        )
    with pytest.raises(ValueError, match="unknown substrate"):
        execute_version_cell(_version_cell(substrate="weird"))


def test_run_experiment_validates_version_overrides():
    with pytest.raises(ValueError, match="--upgrade-waves"):
        run_experiment("mixed_version", smoke=True, upgrade_waves=-1)
    with pytest.raises(ValueError, match="unknown wire spec part"):
        run_experiment("mixed_version", smoke=True, wire_version="bogus")
