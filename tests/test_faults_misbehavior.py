"""Tests for misbehaving-AD plans: the lie vocabulary, deterministic
liar/victim selection, and plan construction."""

import pytest

from repro.faults.misbehavior import (
    LIES,
    ROLES,
    MisbehaviorPlan,
    MisbehaviorStart,
    MisbehaviorStop,
    liar_by_role,
    misbehavior_plan,
    pick_victim_stub,
)
from tests.helpers import line_graph, small_hierarchy


class TestVocabulary:
    def test_lies_cover_the_threat_model(self):
        assert LIES == (
            "route-leak",
            "bogus-origin",
            "stale-replay",
            "metric-lie",
            "term-forgery",
        )

    def test_roles(self):
        assert ROLES == ("stub", "regional", "backbone")


class TestPlan:
    def test_events_must_be_time_ordered(self):
        with pytest.raises(ValueError, match="time-ordered"):
            MisbehaviorPlan(
                (MisbehaviorStop(10.0, 1), MisbehaviorStart(5.0, 1, "metric-lie"))
            )

    def test_unknown_lie_rejected(self):
        with pytest.raises(ValueError, match="unknown lie"):
            MisbehaviorPlan((MisbehaviorStart(0.0, 1, "gaslighting"),))

    def test_iteration_and_horizon(self):
        plan = MisbehaviorPlan(
            (
                MisbehaviorStart(5.0, 1, "metric-lie"),
                MisbehaviorStop(30.0, 1),
            )
        )
        assert len(plan) == 2
        assert [type(ev) for ev in plan] == [MisbehaviorStart, MisbehaviorStop]
        assert plan.horizon == 30.0

    def test_empty_plan(self):
        plan = MisbehaviorPlan(())
        assert len(plan) == 0
        assert plan.horizon == 0.0


class TestLiarSelection:
    def test_picks_highest_degree_of_role(self):
        g = small_hierarchy()
        assert liar_by_role(g, "backbone") == 0
        # Regionals 1 and 2 tie on degree 4; the id breaks the tie.
        assert liar_by_role(g, "regional") == 1
        assert liar_by_role(g, "regional", seed=1) == 2
        # Stub 3 has the bypass link, so it out-degrees its siblings.
        assert liar_by_role(g, "stub") == 3

    def test_seed_rotates_deterministically(self):
        g = small_hierarchy()
        n_regionals = 2
        for seed in range(5):
            assert liar_by_role(g, "regional", seed=seed) == liar_by_role(
                g, "regional", seed=seed + n_regionals
            )

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown liar role"):
            liar_by_role(small_hierarchy(), "tier-1")

    def test_missing_role_is_loud(self):
        with pytest.raises(ValueError, match="no backbone AD"):
            liar_by_role(line_graph(3), "backbone")


class TestVictimSelection:
    def test_victim_is_a_non_adjacent_foreign_stub(self):
        g = small_hierarchy()
        for seed in range(4):
            victim = pick_victim_stub(g, 1, seed=seed)
            assert victim in {5, 6}  # 3 and 4 hang off the liar itself
            assert not g.has_link(1, victim)

    def test_no_candidate_is_loud(self):
        # A 2-node line: the only other AD is adjacent.
        with pytest.raises(ValueError, match="no non-adjacent stub"):
            pick_victim_stub(line_graph(2, "Cs"), 0)


class TestMisbehaviorPlanBuilder:
    def test_default_is_open_ended(self):
        g = small_hierarchy()
        plan = misbehavior_plan(g, "route-leak", start_time=100.0)
        assert len(plan) == 1
        [start] = plan
        assert start == MisbehaviorStart(100.0, 0, "route-leak", None)

    def test_duration_adds_a_stop(self):
        g = small_hierarchy()
        plan = misbehavior_plan(g, "metric-lie", start_time=50.0, duration=25.0)
        events = list(plan)
        assert isinstance(events[1], MisbehaviorStop)
        assert events[1].time == 75.0
        assert plan.horizon == 75.0

    def test_explicit_liar_overrides_role(self):
        g = small_hierarchy()
        plan = misbehavior_plan(g, "metric-lie", liar=5, role="backbone")
        assert next(iter(plan)).ad == 5

    def test_unknown_liar_rejected(self):
        with pytest.raises(ValueError, match="not in the topology"):
            misbehavior_plan(small_hierarchy(), "metric-lie", liar=99)

    def test_unknown_lie_rejected(self):
        with pytest.raises(ValueError, match="unknown lie"):
            misbehavior_plan(small_hierarchy(), "perjury")

    def test_bogus_origin_carries_a_victim(self):
        g = small_hierarchy()
        plan = misbehavior_plan(g, "bogus-origin", role="regional")
        [start] = plan
        assert start.ad == 1
        assert start.target in {5, 6}
