"""Tests for ADSet (incl. the finite/cofinite algebra) and TimeWindow."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.sets import ADSet, TimeWindow


class TestADSetBasics:
    def test_everyone_matches_all(self):
        s = ADSet.everyone()
        assert s.matches(0) and s.matches(10_000)
        assert s.is_universal
        assert not s.is_empty

    def test_include(self):
        s = ADSet.of([1, 2, 3])
        assert s.matches(2)
        assert not s.matches(4)
        assert 2 in s
        assert not s.is_universal

    def test_exclude(self):
        s = ADSet.excluding([5])
        assert not s.matches(5)
        assert s.matches(6)
        assert not s.is_universal
        assert ADSet.excluding([]).is_universal

    def test_none_is_empty(self):
        assert ADSet.none().is_empty
        assert not ADSet.none().matches(1)

    def test_size_bytes_scales_with_members(self):
        assert ADSet.everyone().size_bytes() == 1
        assert ADSet.of([1, 2]).size_bytes() == 5

    def test_plausible_size(self):
        assert ADSet.of([1, 2]).plausible_size() == 2
        assert ADSet.everyone().plausible_size() == float("inf")
        assert ADSet.excluding([1]).plausible_size() == float("inf")


# Strategy producing arbitrary finite/cofinite AD sets over a small universe.
_members = st.frozensets(st.integers(0, 9), max_size=6)
_adsets = st.one_of(
    st.just(ADSet.everyone()),
    _members.map(ADSet.of),
    _members.map(ADSet.excluding),
)


class TestADSetAlgebra:
    @settings(max_examples=200, deadline=None)
    @given(a=_adsets, b=_adsets, x=st.integers(0, 9))
    def test_intersection_semantics(self, a, b, x):
        assert a.intersect(b).matches(x) == (a.matches(x) and b.matches(x))

    @settings(max_examples=200, deadline=None)
    @given(a=_adsets, b=_adsets, x=st.integers(0, 9))
    def test_union_semantics(self, a, b, x):
        assert a.union(b).matches(x) == (a.matches(x) or b.matches(x))

    @settings(max_examples=100, deadline=None)
    @given(a=_adsets)
    def test_identity_elements(self, a):
        everyone, none = ADSet.everyone(), ADSet.none()
        for x in range(10):
            assert a.intersect(everyone).matches(x) == a.matches(x)
            assert a.union(none).matches(x) == a.matches(x)
            assert not a.intersect(none).matches(x)
            assert a.union(everyone).matches(x)

    def test_empty_detection_after_intersection(self):
        assert ADSet.of([1]).intersect(ADSet.of([2])).is_empty
        assert not ADSet.of([1]).intersect(ADSet.of([1, 2])).is_empty
        assert ADSet.of([1]).intersect(ADSet.excluding([1])).is_empty

    def test_subset_cases(self):
        assert ADSet.of([1]).is_subset_of(ADSet.of([1, 2]))
        assert not ADSet.of([1, 3]).is_subset_of(ADSet.of([1, 2]))
        assert ADSet.of([2]).is_subset_of(ADSet.excluding([1]))
        assert not ADSet.of([1]).is_subset_of(ADSet.excluding([1]))
        assert ADSet.excluding([1, 2]).is_subset_of(ADSet.excluding([1]))
        assert not ADSet.excluding([1]).is_subset_of(ADSet.excluding([1, 2]))
        # A cofinite set never fits inside a finite one.
        assert not ADSet.excluding([1]).is_subset_of(ADSet.of(range(100)))
        assert ADSet.none().is_subset_of(ADSet.of([]))
        assert ADSet.everyone().is_subset_of(ADSet.excluding([]))

    @settings(max_examples=200, deadline=None)
    @given(a=_adsets, b=_adsets, x=st.integers(0, 9))
    def test_subset_implies_pointwise_containment(self, a, b, x):
        if a.is_subset_of(b) and a.matches(x):
            assert b.matches(x)


class TestTimeWindow:
    def test_universal_by_default(self):
        w = TimeWindow.always()
        assert all(w.matches(h) for h in range(24))
        assert w.is_universal

    def test_simple_window(self):
        w = TimeWindow(9, 17)
        assert w.matches(9)
        assert w.matches(16)
        assert not w.matches(17)
        assert not w.matches(3)

    def test_wraparound_window(self):
        w = TimeWindow(22, 6)
        assert w.matches(23)
        assert w.matches(0)
        assert w.matches(5)
        assert not w.matches(6)
        assert not w.matches(12)

    def test_invalid_hours_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(25, 0)
        with pytest.raises(ValueError):
            TimeWindow(0, 5).matches(24)

    @settings(max_examples=100, deadline=None)
    @given(start=st.integers(0, 23), end=st.integers(0, 23))
    def test_window_covers_exact_hour_count(self, start, end):
        w = TimeWindow(start, end)
        covered = sum(w.matches(h) for h in range(24))
        expected = 24 if start == end else (end - start) % 24
        assert covered == expected
