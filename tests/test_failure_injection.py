"""Failure-injection battery: link-flap storms against every protocol.

Section 2.2 demands the protocols be "somewhat adaptive to changes in
inter-AD topology".  These tests subject each architecture to randomized
sequences of failures and repairs and then check the hard invariants:

* the control plane re-quiesces after every event;
* converged forwarding is loop-free;
* LS protocols: all LSDBs agree with physical reality afterwards;
* after all links are repaired, routing recovers to the initial answers.
"""

import random

import pytest

from repro.adgraph.failures import safe_failure_candidates
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.core.evaluation import sample_flows
from repro.policy.generators import hierarchical_policies
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.idrp import IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.protocols.spf import PlainLinkStateProtocol

STORM_PROTOCOLS = [
    DistanceVectorProtocol,
    ECMAProtocol,
    IDRPProtocol,
    PlainLinkStateProtocol,
    LinkStateHopByHopProtocol,
    ORWGProtocol,
]


def _storm(proto, events, seed):
    """Apply a random flap storm; every event is followed by quiescence."""
    rng = random.Random(seed)
    down = []
    for _ in range(events):
        repair = down and rng.random() < 0.4
        if repair:
            a, b = down.pop(rng.randrange(len(down)))
            proto.apply_link_status(a, b, True)
        else:
            candidates = safe_failure_candidates(proto.graph)
            candidates = [k for k in candidates if k not in down]
            if not candidates:
                continue
            a, b = rng.choice(candidates)
            down.append((a, b))
            proto.apply_link_status(a, b, False)
        proto.network.run()
    # Repair everything.
    for a, b in down:
        proto.apply_link_status(a, b, True)
        proto.network.run()


@pytest.fixture(scope="module")
def storm_setting():
    graph = generate_internet(
        TopologyConfig(seed=55, lateral_prob=0.5, bypass_prob=0.2)
    )
    policies = hierarchical_policies(graph).policies
    flows = sample_flows(graph, 20, seed=56)
    return graph, policies, flows


@pytest.mark.parametrize("cls", STORM_PROTOCOLS, ids=lambda c: c.name)
class TestFlapStorm:
    def test_storm_then_recovery(self, cls, storm_setting):
        graph, policies, flows = storm_setting
        proto = cls(graph.copy(), policies.copy())
        proto.converge()
        baseline = {f: proto.find_route(f) for f in flows}

        _storm(proto, events=10, seed=99)

        # All links are back up: the protocol must answer as well as a
        # freshly converged instance.  DV-family protocols keep the
        # incumbent on metric ties, so recovered *paths* may differ from
        # a fresh run's -- but reachability and route quality must match.
        from repro.policy.legality import path_cost

        fresh = cls(graph.copy(), policies.copy())
        fresh.converge()
        for flow in flows:
            stormed = proto.find_route(flow)
            clean = fresh.find_route(flow)
            assert (stormed is None) == (clean is None), (
                f"{proto.name} lost reachability for {flow}"
            )
            if stormed is None:
                continue
            if cls is DistanceVectorProtocol:
                assert len(stormed) == len(clean)  # hop-count metric ties
            elif cls in (ECMAProtocol, IDRPProtocol):
                assert path_cost(graph, stormed, flow.qos.metric) == pytest.approx(
                    path_cost(graph, clean, flow.qos.metric)
                )
            else:
                # LS protocols recompute deterministically from the LSDB.
                assert stormed == clean
        # And the baseline reachability is restored.
        for flow, path in baseline.items():
            assert (proto.find_route(flow) is None) == (path is None)

    def test_no_loops_mid_storm(self, cls, storm_setting):
        graph, policies, flows = storm_setting
        proto = cls(graph.copy(), policies.copy())
        proto.converge()
        rng = random.Random(7)
        for step in range(6):
            candidates = safe_failure_candidates(proto.graph)
            if not candidates:
                break
            a, b = rng.choice(candidates)
            proto.apply_link_status(a, b, False)
            proto.network.run()
            for flow in flows[:10]:
                path = proto.find_route(flow)
                if path is not None:
                    assert len(set(path)) == len(path)
            proto.apply_link_status(a, b, True)
            proto.network.run()


class TestLSDBConsistencyAfterStorm:
    @pytest.mark.parametrize(
        "cls", [PlainLinkStateProtocol, LinkStateHopByHopProtocol, ORWGProtocol],
        ids=lambda c: c.name,
    )
    def test_lsdbs_match_reality(self, cls, storm_setting):
        graph, policies, _ = storm_setting
        proto = cls(graph.copy(), policies.copy())
        proto.converge()
        _storm(proto, events=8, seed=3)
        reference = None
        for ad_id in proto.graph.ad_ids():
            node = proto.network.node(ad_id)
            view, _ = node.local_view()
            if reference is None:
                reference = node.lsdb
            assert node.lsdb == reference
            for link in proto.graph.links():
                assert view.link(link.a, link.b).up == link.up
