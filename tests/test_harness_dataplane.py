"""Harness integration of the traffic axis: E14 cells, schema v6."""

import json

import pytest

from repro.harness import EXPERIMENTS, RunRecord, run_experiment
from repro.harness.record import SCHEMA_VERSION
from repro.harness.session import execute_cell
from repro.harness.spec import (
    Cell,
    ExperimentSpec,
    FailureSpec,
    FaultSpec,
    ProtocolSpec,
    ScenarioSpec,
    TrafficSpec,
)


def dataplane_cell(flows=5000, protocol="ls-hbh", **cell_kw):
    return Cell(
        experiment="test_dataplane",
        index=0,
        scenario=ScenarioSpec(kind="reference", seed=5, num_flows=8),
        protocol=ProtocolSpec(name=protocol),
        failure=FailureSpec(),
        fault=FaultSpec(
            flaps=1, crashes=1, seed=3, probe_interval=100.0, probe_flows=4
        ),
        traffic=TrafficSpec(flows=flows, pairs=128, seed=14),
        **cell_kw,
    )


class TestTrafficSpec:
    def test_inert_default(self):
        spec = TrafficSpec()
        assert not spec.active
        assert spec.display == "none"

    def test_cell_key_carries_the_axis(self):
        cell = dataplane_cell()
        key = cell.key()
        assert key["traffic"] == "5000f/s=1.1"
        assert Cell(
            experiment="x",
            index=0,
            scenario=ScenarioSpec(),
            protocol=ProtocolSpec(name="ls-hbh"),
            failure=FailureSpec(),
        ).key()["traffic"] == "none"

    def test_spec_grid_expansion(self):
        spec = ExperimentSpec(
            name="grid",
            scenarios=(ScenarioSpec(),),
            protocols=(ProtocolSpec(name="ls-hbh"),),
            traffics=(TrafficSpec(), TrafficSpec(flows=100)),
        )
        cells = list(spec.cells())
        assert len(cells) == 2
        assert [c.traffic.display for c in cells] == ["none", "100f/s=1.1"]


class TestExecution:
    @pytest.fixture(scope="class")
    def record(self):
        return execute_cell(dataplane_cell())

    def test_dataplane_block(self, record):
        assert record.schema_version == SCHEMA_VERSION
        dp = record.dataplane
        assert dp is not None
        assert dp["workload"]["flows"] == 5000
        assert dp["workload"]["classes"] > 0
        assert 0 < dp["fib"]["bytes"] < 200_000
        series = dp["series"]
        labels = [e["label"] for e in series["epochs"]]
        assert labels[0] == "initial"
        assert labels[-1] == "final"
        # The storm rides RoutePulse: every probe round snapshotted.
        assert labels.count("epoch") >= 2
        for e in series["epochs"]:
            assert sum(e["verdicts"].values()) == 5000
        assert 0.0 <= series["outage_p99"] <= 1.0

    def test_inactive_axis_records_no_block(self):
        cell = Cell(
            experiment="test_dataplane",
            index=0,
            scenario=ScenarioSpec(kind="small", seed=1, num_flows=6),
            protocol=ProtocolSpec(name="ls-hbh"),
            failure=FailureSpec(),
        )
        record = execute_cell(cell)
        assert record.dataplane is None
        assert record.cell["traffic"] == "none"

    def test_roundtrip(self, record):
        again = RunRecord.from_json(record.to_json())
        assert again.dataplane == record.dataplane
        assert again.comparable() == record.comparable()

    def test_v5_line_upgrades(self, record):
        data = json.loads(record.to_json())
        data["schema_version"] = 5
        del data["dataplane"]
        del data["cell"]["traffic"]
        old = RunRecord.from_json(json.dumps(data))
        assert old.schema_version == SCHEMA_VERSION
        assert old.dataplane is None
        assert old.cell["traffic"] == "none"

    def test_live_cell_rejects_traffic(self):
        cell = Cell(
            experiment="test_dataplane",
            index=0,
            scenario=ScenarioSpec(kind="small", seed=1, num_flows=6),
            protocol=ProtocolSpec(name="plain-ls"),
            failure=FailureSpec(),
            traffic=TrafficSpec(flows=100),
            substrate="live",
        )
        with pytest.raises(ValueError, match="traffic"):
            execute_cell(cell)


class TestE14:
    def test_registered(self):
        exp = EXPERIMENTS["dataplane_tail"]
        assert exp.eid == "E14"

    def test_smoke_run(self, tmp_path):
        spec, records, text = run_experiment(
            "dataplane_tail", smoke=True, runs_dir=str(tmp_path)
        )
        assert len(records) == len(spec.protocols) == 2
        for rec in records:
            assert rec.dataplane is not None
            assert rec.dataplane["workload"]["flows"] == 20_000
        assert "out-p99" in text
        assert "fib-KB" in text

    def test_flow_overrides(self, tmp_path):
        spec, records, _ = run_experiment(
            "dataplane_tail",
            smoke=True,
            runs_dir=str(tmp_path),
            flows=1000,
            zipf_s=1.5,
        )
        for rec in records:
            assert rec.dataplane["workload"]["flows"] == 1000
            assert rec.dataplane["workload"]["zipf_s"] == 1.5
        with pytest.raises(ValueError):
            run_experiment(
                "dataplane_tail", smoke=True, runs_dir=str(tmp_path), flows=-5
            )
