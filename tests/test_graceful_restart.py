"""Graceful restart: helpers hold, hold timers expire, resync refills.

The mechanism is driver-level (no new wire messages): a graceful crash
silences the node but leaves its links up in ground truth, survivors are
told to hold its routes as stale, and a hold timer bounds their
patience.  With every feature off the crash/restore machinery must be
byte-identical to the legacy disruptive path -- that invariant is what
keeps every committed experiment table unchanged.
"""

import pytest

from repro.policy.generators import open_policies
from repro.protocols.graceful import (
    FEATURES,
    GR_FULL,
    GR_OFF,
    GracefulRestartConfig,
    graceful_from,
)
from repro.protocols.registry import make_protocol
from repro.simul.runner import converge

from .helpers import mk_graph


def ring8():
    return mk_graph(
        [(i, "Rt") for i in range(8)],
        [(i, (i + 1) % 8) for i in range(8)],
    )


def _build(graceful=None, protocol="plain-ls"):
    graph = ring8()
    policies = open_policies(graph).policies
    kwargs = {} if graceful is None else {"graceful": graceful}
    proto = make_protocol(protocol, graph, policies, **kwargs)
    network = proto.build()
    converge(network)
    return proto, network


def _routes(proto):
    from repro.harness.chaos import routes_digest

    return routes_digest(proto)


# ------------------------------------------------------------------ config


def test_graceful_from_accepts_all_spellings():
    assert graceful_from(None) is GR_OFF
    assert graceful_from("") == GR_OFF
    assert graceful_from("none") == GR_OFF
    assert graceful_from("all") == GR_FULL
    assert graceful_from("helper") == GracefulRestartConfig(helper=True)
    assert graceful_from("helper+resync") == GR_FULL
    assert graceful_from(["helper", "resync"]) == GR_FULL
    cfg = GracefulRestartConfig(resync=True, hold_time=50.0)
    assert graceful_from(cfg) is cfg


def test_graceful_from_rejects_unknown_features():
    with pytest.raises(ValueError, match="unknown graceful-restart"):
        graceful_from("helpre")


def test_config_display_and_enabled_order():
    assert str(GR_OFF) == "none"
    assert str(GR_FULL) == "helper+resync"
    assert GR_FULL.enabled == FEATURES
    assert not GR_OFF.any_enabled
    assert GracefulRestartConfig(resync=True).enabled == ("resync",)


def test_graceful_option_flows_through_registry():
    proto, _ = _build(graceful="all")
    assert proto.graceful == GR_FULL
    plain, _ = _build()
    assert plain.graceful == GR_OFF


# ----------------------------------------------------------------- helpers


def test_helper_crash_keeps_links_up_and_counts_holds():
    proto, network = _build(graceful="all")
    before = _routes(proto)
    proto.crash_node(3, retain_state=True)
    # Ground truth never saw a topology change: the compiled FIB (and
    # find_route) keep forwarding through the silenced AD.
    assert all(link.up for link in proto.graph.links_of(3))
    assert _routes(proto) == before
    summary = proto.graceful_summary()
    assert summary["holds"] == 2  # both ring neighbours hold
    assert summary["expirations"] == 0


def test_hold_expiry_turns_the_restart_disruptive():
    proto, network = _build(
        graceful=GracefulRestartConfig(helper=True, hold_time=50.0)
    )
    proto.crash_node(3, retain_state=True)
    network.run(until=network.sim.now + 200.0)
    summary = proto.graceful_summary()
    assert summary["expirations"] == 1
    # Helpers gave up: the withdrawal machinery ran after all.
    assert all(not link.up for link in proto.graph.links_of(3))


def test_restore_within_hold_cancels_timer_and_resyncs():
    proto, network = _build(graceful="all")
    before = _routes(proto)
    proto.crash_node(3, retain_state=True)
    network.run(until=network.sim.now + 50.0)  # well inside hold_time=300
    proto.restore_node(3)
    network.run()
    summary = proto.graceful_summary()
    assert summary["expirations"] == 0  # the hold timer was cancelled
    assert summary["resyncs"] == 1
    assert _routes(proto) == before


def test_disabled_graceful_is_byte_identical_to_legacy_path():
    """GR off must not perturb the legacy crash/restore machinery at all."""

    def crash_cycle(graceful):
        proto, network = _build(graceful=graceful)
        proto.crash_node(3, retain_state=True)
        network.run(until=network.sim.now + 100.0)
        proto.restore_node(3)
        network.run()
        snap = network.metrics.snapshot(network.sim.now)
        return dict(snap.messages), snap.dropped, _routes(proto)

    assert crash_cycle(None) == crash_cycle("none") == crash_cycle(GR_OFF)


def test_gr_off_crash_is_disruptive():
    proto, network = _build()
    proto.crash_node(3, retain_state=True)
    assert all(not link.up for link in proto.graph.links_of(3))
    assert proto.graceful_summary() == {
        "holds": 0,
        "expirations": 0,
        "resyncs": 0,
    }


def test_graceful_works_on_the_dv_family_too():
    proto, network = _build(graceful="all", protocol="idrp")
    before = _routes(proto)
    proto.crash_node(5, retain_state=True)
    assert _routes(proto) == before  # stale routes held
    network.run(until=network.sim.now + 50.0)
    proto.restore_node(5)
    network.run()
    summary = proto.graceful_summary()
    assert summary["holds"] == 2
    assert summary["resyncs"] == 1
    assert _routes(proto) == before
