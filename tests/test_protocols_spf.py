"""Tests for the plain link-state SPF baseline."""


from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.protocols.spf import PlainLinkStateProtocol, spf_next_hops
from tests.helpers import line_graph


class TestSpfNextHops:
    def test_shortest_paths_on_diamond(self, diamond):
        table = spf_next_hops(diamond, 0, "delay")
        assert table[3] == 1  # via the cheap branch
        assert table[1] == 1
        assert table[2] == 2

    def test_respects_metric_choice(self, diamond):
        # Under "cost" all links weigh 1; 0->3 ties at 2 hops either way.
        table = spf_next_hops(diamond, 0, "cost")
        assert table[3] in {1, 2}

    def test_skips_down_links(self, diamond):
        diamond.set_link_status(0, 1, up=False)
        table = spf_next_hops(diamond, 0, "delay")
        assert table[3] == 2
        assert 1 in table  # still reachable the long way: 0-2-3-1
        assert table[1] == 2

    def test_unreachable_omitted(self):
        g = line_graph(3)
        g.set_link_status(1, 2, up=False)
        table = spf_next_hops(g, 0, "delay")
        assert 2 not in table

    def test_deterministic_on_ties(self, diamond):
        t1 = spf_next_hops(diamond, 0, "cost")
        t2 = spf_next_hops(diamond, 0, "cost")
        assert t1 == t2


class TestProtocol:
    def test_end_to_end_routing(self, diamond):
        proto = PlainLinkStateProtocol(diamond, PolicyDatabase())
        proto.converge()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 3)

    def test_consistent_hop_by_hop_no_loops(self, gen_graph):
        proto = PlainLinkStateProtocol(gen_graph, PolicyDatabase())
        proto.converge()
        ids = gen_graph.ad_ids()
        for src in ids[::5]:
            for dst in ids[::7]:
                if src != dst:
                    assert proto.find_route(FlowSpec(src, dst)) is not None
        assert proto.forwarding_loops == 0

    def test_reroutes_after_failure(self, diamond):
        proto = PlainLinkStateProtocol(diamond, PolicyDatabase())
        proto.converge()
        proto.network.set_link_status(1, 3, up=False)
        proto.network.run()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 2, 3)

    def test_per_qos_tables_cached(self, diamond):
        proto = PlainLinkStateProtocol(diamond, PolicyDatabase())
        proto.converge()
        proto.find_route(FlowSpec(0, 3, qos=QOS.DEFAULT))
        proto.find_route(FlowSpec(0, 3, qos=QOS.DEFAULT))
        spf_runs = proto.network.metrics.computations.get((0, "spf"), 0)
        assert spf_runs == 1  # second lookup served from cache

    def test_rib_size_is_lsdb(self, diamond):
        proto = PlainLinkStateProtocol(diamond, PolicyDatabase())
        proto.converge()
        assert proto.rib_size(0) == diamond.num_ads
