"""The canonical JSON wire codec: round-trips, framing, closed vocabulary.

Every message type that can cross the live substrate's sockets must
survive ``to_wire``/``from_wire`` exactly (hypothesis-generated values),
the text form must be canonical (equal messages encode to equal bytes),
and the decoder must reject anything outside its registered vocabulary.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.ad import Level
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.sets import ADSet, TimeWindow, _SetMode
from repro.policy.terms import PolicyTerm, TermRef
from repro.policy.uci import UCI
from repro.protocols.dv import DVUpdate
from repro.protocols.ecma import ECMAUpdate
from repro.protocols.egp import NRAck, NRUpdate
from repro.protocols.flooding import (
    ExchangeAck,
    LinkRecord,
    LinkStateAd,
    LSDBExchange,
)
from repro.protocols.idrp import IDRPUpdate, RouteAd
from repro.protocols.orwg.messages import (
    DataPacket,
    Handle,
    SetupAck,
    SetupNak,
    SetupPacket,
    TeardownPacket,
)
from repro.simul.wire import (
    WireError,
    decode_frame,
    dumps,
    encode_frame,
    from_wire,
    loads,
    to_wire,
)

# --------------------------------------------------------------- strategies

ad_ids = st.integers(min_value=0, max_value=999)
metrics = st.floats(allow_nan=False, allow_infinity=True, width=64)
hours = st.integers(min_value=0, max_value=23)
qos_values = st.sampled_from(list(QOS))
uci_values = st.sampled_from(list(UCI))
levels = st.sampled_from(list(Level))

ad_sets = st.builds(
    ADSet,
    mode=st.sampled_from(list(_SetMode)),
    members=st.frozensets(ad_ids, max_size=4),
)
windows = st.builds(TimeWindow, start_hour=hours, end_hour=hours)
flows = st.builds(
    FlowSpec, src=ad_ids, dst=ad_ids, qos=qos_values, uci=uci_values, hour=hours
)
handles = st.builds(Handle, src=ad_ids, local_id=st.integers(0, 1 << 30))
paths = st.lists(ad_ids, min_size=1, max_size=6).map(tuple)
term_refs = st.builds(TermRef, owner=ad_ids, term_id=st.integers(-1, 1 << 20))
policy_terms = st.builds(
    PolicyTerm,
    owner=ad_ids,
    sources=ad_sets,
    dests=ad_sets,
    prev_ads=ad_sets,
    next_ads=ad_sets,
    qos_classes=st.none() | st.frozensets(qos_values, max_size=3),
    ucis=st.none() | st.frozensets(uci_values, max_size=3),
    window=windows,
    charge=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    term_id=st.integers(-1, 1 << 20),
)
link_records = st.builds(
    LinkRecord,
    neighbor=ad_ids,
    delay=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    cost=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    up=st.booleans(),
    bandwidth=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
)
link_state_ads = st.builds(
    LinkStateAd,
    origin=ad_ids,
    seq=st.integers(0, 1 << 30),
    links=st.lists(link_records, max_size=4).map(tuple),
    terms=st.lists(policy_terms, max_size=2).map(tuple),
    origin_level=levels,
)
route_ads = st.builds(
    RouteAd,
    dest=ad_ids,
    qos=qos_values,
    path=paths,
    metric=metrics,
    allowed=ad_sets,
    cls=st.integers(0, 7),
)

messages = st.one_of(
    st.builds(
        DVUpdate,
        entries=st.lists(st.tuples(ad_ids, st.integers(0, 64)), max_size=5).map(tuple),
        poisons=st.lists(ad_ids, max_size=3).map(tuple),
    ),
    st.builds(
        ECMAUpdate,
        entries=st.lists(
            st.tuples(ad_ids, qos_values, metrics, st.integers(0, 64), st.booleans()),
            max_size=4,
        ).map(tuple),
        poisons=st.lists(st.tuples(ad_ids, qos_values), max_size=3).map(tuple),
    ),
    st.builds(NRUpdate, dests=st.lists(ad_ids, max_size=5).map(tuple),
              seq=st.integers(0, 1 << 30)),
    st.builds(NRAck, seq=st.integers(0, 1 << 30)),
    st.builds(LSDBExchange, ads=st.lists(link_state_ads, max_size=3).map(tuple),
              token=st.integers(0, 1 << 30)),
    st.builds(ExchangeAck, token=st.integers(0, 1 << 30)),
    link_state_ads,
    st.builds(IDRPUpdate, routes=st.lists(route_ads, max_size=3).map(tuple)),
    st.builds(SetupPacket, handle=handles, flow=flows, route=paths,
              term_refs=st.lists(term_refs, max_size=3).map(tuple),
              hop=st.integers(0, 16)),
    st.builds(SetupAck, handle=handles, route=paths, hop=st.integers(0, 16)),
    st.builds(SetupNak, handle=handles, route=paths, hop=st.integers(0, 16),
              rejected_by=ad_ids, reason=st.text(max_size=30)),
    st.builds(DataPacket, handle=handles, flow=flows,
              route=st.none() | paths, hop=st.integers(0, 16),
              payload_bytes=st.integers(0, 1 << 16)),
    st.builds(TeardownPacket, handle=handles, route=paths,
              hop=st.integers(0, 16)),
)


# -------------------------------------------------------------- round trips


@settings(max_examples=100, deadline=None)
@given(messages)
def test_roundtrip_identity(msg):
    assert from_wire(to_wire(msg)) == msg


@settings(max_examples=50, deadline=None)
@given(messages)
def test_text_roundtrip_and_canonical(msg):
    text = dumps(msg)
    assert loads(text) == msg
    # Canonical: re-encoding the decoded message gives identical text.
    assert dumps(loads(text)) == text
    # And the text is pure JSON (no Python-only syntax leaked through).
    json.loads(text)


@settings(max_examples=50, deadline=None)
@given(messages, ad_ids, ad_ids)
def test_frame_roundtrip(msg, src, dst):
    frame = encode_frame(src, dst, msg)
    got_src, got_dst, got_msg = decode_frame(frame)
    assert (got_src, got_dst, got_msg) == (src, dst, msg)


@settings(max_examples=25, deadline=None)
@given(messages)
def test_size_model_survives_roundtrip(msg):
    # The modelled byte size is derived from content, so the decoded
    # message must claim exactly the same size (sim/live cost parity).
    assert from_wire(to_wire(msg)).size_bytes() == msg.size_bytes()


# ------------------------------------------------------- closed vocabulary


def test_unregistered_message_type_rejected():
    with pytest.raises(WireError, match="unknown message type"):
        from_wire({"t": "os.system", "f": {}})


def test_unregistered_payload_type_rejected():
    with pytest.raises(WireError, match="unknown payload type"):
        from_wire({"t": "NRAck", "f": {"seq": {"__d": "Evil", "f": {}}}})


def test_unknown_field_rejected():
    with pytest.raises(WireError, match="no fields"):
        from_wire({"t": "NRAck", "f": {"seq": 1, "extra": 2}})


def test_untagged_object_rejected():
    with pytest.raises(WireError, match="untagged"):
        from_wire({"t": "NRAck", "f": {"seq": {"sneaky": 1}}})


def test_non_message_rejected():
    with pytest.raises(WireError):
        from_wire({"f": {}})
    with pytest.raises(WireError):
        from_wire("NRAck")


# ---------------------------------------------------------------- framing


def test_frame_length_prefix_validated():
    frame = encode_frame(1, 2, NRAck(seq=7))
    with pytest.raises(WireError, match="length"):
        decode_frame(frame + b"x")
    with pytest.raises(WireError, match="short frame"):
        decode_frame(b"\x00")


def test_frame_body_must_be_json():
    body = b"not json"
    frame = len(body).to_bytes(4, "big") + body
    with pytest.raises(WireError, match="undecodable"):
        decode_frame(frame)


def test_frozenset_encoding_is_order_independent():
    a = ADSet(_SetMode.INCLUDE, frozenset([3, 1, 2]))
    b = ADSet(_SetMode.INCLUDE, frozenset([2, 3, 1]))
    ra = RouteAd(dest=9, qos=QOS.DEFAULT, path=(1,), metric=1.0, allowed=a)
    rb = RouteAd(dest=9, qos=QOS.DEFAULT, path=(1,), metric=1.0, allowed=b)
    assert dumps(IDRPUpdate(routes=(ra,))) == dumps(IDRPUpdate(routes=(rb,)))


def test_infinite_metric_survives():
    ad = RouteAd(dest=1, qos=QOS.DEFAULT, path=(2,), metric=float("inf"),
                 allowed=ADSet(_SetMode.ALL, frozenset()))
    msg = IDRPUpdate(routes=(ad,))
    assert loads(dumps(msg)) == msg
