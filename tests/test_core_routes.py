"""Tests for the Route value type."""

import pytest

from repro.core.routes import Route
from repro.policy.flows import FlowSpec


class TestRoute:
    def test_endpoint_validation(self):
        with pytest.raises(ValueError):
            Route(path=(1, 2), flow=FlowSpec(1, 3), cost=1.0)
        with pytest.raises(ValueError):
            Route(path=(), flow=FlowSpec(1, 3), cost=1.0)

    def test_basic_properties(self):
        r = Route(path=(1, 2, 3), flow=FlowSpec(1, 3), cost=2.0)
        assert r.hops == 2
        assert r.transit_ads == (2,)
        assert r.is_loop_free

    def test_next_hop_after(self):
        r = Route(path=(1, 2, 3), flow=FlowSpec(1, 3), cost=2.0)
        assert r.next_hop_after(1) == 2
        assert r.next_hop_after(2) == 3
        with pytest.raises(ValueError):
            r.next_hop_after(3)

    def test_header_bytes(self):
        r = Route(path=(1, 2, 3), flow=FlowSpec(1, 3), cost=2.0)
        assert r.header_bytes() == 6

    def test_trivial_route(self):
        r = Route(path=(5,), flow=FlowSpec(5, 5), cost=0.0)
        assert r.hops == 0
        assert r.transit_ads == ()
