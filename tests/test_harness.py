"""Tests for the experiment harness: specs, records, session, experiments."""

import json
import os

import pytest

from repro.harness import (
    SCHEMA_VERSION,
    EpisodeRecord,
    ExperimentSession,
    ExperimentSpec,
    FailureSpec,
    FaultSpec,
    MisbehaviorSpec,
    ProtocolSpec,
    RunRecord,
    ScenarioSpec,
    execute_cell,
    read_jsonl,
    run_experiment,
    run_spec,
    write_jsonl,
)
from repro.harness.experiments import _parse_liar
from repro.harness.session import _parse_trace


def small_spec(**overrides):
    base = dict(
        name="t",
        scenarios=(ScenarioSpec(kind="small", seed=3, num_flows=8),),
        protocols=(ProtocolSpec("idrp"), ProtocolSpec("orwg")),
        failures=(FailureSpec(kind="random", count=1, repair=True, seed=3),),
        evaluate=True,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpec:
    def test_cell_grid_expansion_order(self):
        spec = small_spec(
            scenarios=(
                ScenarioSpec(kind="small", seed=1),
                ScenarioSpec(kind="small", seed=2),
            ),
            failures=(FailureSpec(), FailureSpec(kind="random", count=1)),
        )
        cells = spec.cells()
        # scenarios x protocols x failures, nested in that order.
        assert len(cells) == 2 * 2 * 2
        assert [c.index for c in cells] == list(range(8))
        assert cells[0].scenario.seed == 1 and cells[0].protocol.name == "idrp"
        assert cells[-1].scenario.seed == 2 and cells[-1].protocol.name == "orwg"

    def test_seed_axis_reseeds_every_scenario(self):
        spec = small_spec(seeds=(11, 12, 13))
        cells = spec.cells()
        assert len(cells) == 3 * 2
        assert sorted({c.scenario.seed for c in cells}) == [11, 12, 13]

    def test_cells_are_picklable(self):
        import pickle

        for cell in small_spec().cells():
            clone = pickle.loads(pickle.dumps(cell))
            assert clone.key() == cell.key()

    def test_unknown_scenario_kind_raises(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            ScenarioSpec(kind="nope").build()

    def test_unknown_failure_kind_raises(self):
        g = ScenarioSpec(kind="small", seed=0).build().graph
        with pytest.raises(ValueError, match="unknown failure kind"):
            FailureSpec(kind="nope", count=1).build(g)

    def test_custom_scenario_needs_topology(self):
        with pytest.raises(ValueError, match="topology"):
            ScenarioSpec(kind="custom").build()


class TestFaultSpec:
    def test_default_is_inert(self):
        fault = FaultSpec()
        assert not fault.impaired
        assert not fault.churns
        assert not fault.active
        assert fault.display == "none"

    def test_display_summarizes_parameters(self):
        fault = FaultSpec(loss=0.05, flaps=2, crashes=1)
        assert fault.display == "loss=0.05,flaps=2,crashes=1"
        assert FaultSpec(loss=0.05, label="5% loss").display == "5% loss"

    def test_impairment_mirrors_channel_fields(self):
        fault = FaultSpec(loss=0.1, dup=0.01, jitter=2.0)
        spec = fault.impairment()
        assert spec.drop_prob == 0.1
        assert spec.dup_prob == 0.01
        assert spec.jitter == 2.0

    def test_horizon_covers_the_timeline(self):
        fault = FaultSpec(flaps=2, crashes=1, start_time=100, spacing=400)
        assert fault.horizon == 100 + 3 * 400

    def test_build_plan_orders_flaps_before_crashes(self):
        from repro.faults.plan import LinkFault, NodeFault

        graph = ScenarioSpec(kind="small", seed=3).build().graph
        plan = FaultSpec(flaps=1, crashes=1).build_plan(graph)
        kinds = [type(ev) for ev in plan]
        assert kinds == [LinkFault, LinkFault, NodeFault, NodeFault]

    def test_fault_axis_is_innermost(self):
        spec = small_spec(
            faults=(FaultSpec(), FaultSpec(loss=0.05)),
        )
        cells = spec.cells()
        assert len(cells) == 2 * 1 * 2
        assert cells[0].fault.display == "none"
        assert cells[1].fault.display == "loss=0.05"
        assert cells[0].protocol.name == cells[1].protocol.name

    def test_cell_key_carries_fault(self):
        spec = small_spec(faults=(FaultSpec(loss=0.2, label="lossy"),))
        assert all(c.key()["fault"] == "lossy" for c in spec.cells())


class TestRobustnessCell:
    def test_timeline_episode_and_robustness_summary(self):
        [cell] = small_spec(
            protocols=(ProtocolSpec("ls-hbh"),),
            failures=(FailureSpec(),),
            faults=(FaultSpec(loss=0.02, flaps=1, seed=4, probe_flows=4),),
        ).cells()
        record = execute_cell(cell)
        assert record.episodes[-1].kind == "timeline"
        assert record.channel is not None
        assert record.channel["transmissions"] > 0
        rob = record.robustness
        assert rob is not None
        assert rob["samples"] > 0
        assert 0.0 <= rob["availability"] <= 1.0
        assert set(rob["counts"]) == {"ok", "stale", "loop", "blackhole", "hijacked"}

    def test_inert_fault_leaves_record_byte_identical(self):
        base = small_spec(
            protocols=(ProtocolSpec("ls-hbh"),),
            failures=(FailureSpec(),),
        )
        explicit = small_spec(
            protocols=(ProtocolSpec("ls-hbh"),),
            failures=(FailureSpec(),),
            faults=(FaultSpec(),),
        )
        [a] = (execute_cell(c) for c in base.cells())
        [b] = (execute_cell(c) for c in explicit.cells())
        assert a.comparable() == b.comparable()
        assert a.channel is None and a.robustness is None


class TestMisbehaviorSpec:
    def test_default_is_inert(self):
        spec = MisbehaviorSpec()
        assert not spec.active
        assert spec.display == "none"
        assert len(spec.build_plan(None)) == 0

    def test_display_names_lie_and_liar(self):
        assert MisbehaviorSpec(lie="route-leak").display == "route-leak@backbone"
        assert (
            MisbehaviorSpec(lie="metric-lie", liar_ad=5).display
            == "metric-lie@ad=5"
        )
        assert MisbehaviorSpec(label="baseline").display == "baseline"

    def test_horizon_covers_the_probe_window(self):
        spec = MisbehaviorSpec(lie="route-leak", start_time=150.0)
        assert spec.horizon == 150.0 + MisbehaviorSpec.PROBE_WINDOW
        assert (
            MisbehaviorSpec(lie="route-leak", start_time=150.0, duration=40.0).horizon
            == 190.0 + MisbehaviorSpec.PROBE_WINDOW
        )

    def test_misbehavior_axis_is_innermost(self):
        spec = small_spec(
            failures=(FailureSpec(),),
            misbehaviors=(MisbehaviorSpec(), MisbehaviorSpec(lie="metric-lie")),
        )
        cells = spec.cells()
        assert len(cells) == 1 * 2 * 1 * 2
        assert cells[0].misbehavior.display == "none"
        assert cells[1].misbehavior.display == "metric-lie@backbone"
        assert cells[0].protocol.name == cells[1].protocol.name

    def test_cell_key_carries_misbehavior(self):
        spec = small_spec(
            misbehaviors=(MisbehaviorSpec(lie="route-leak", label="leak"),)
        )
        assert all(c.key()["misbehavior"] == "leak" for c in spec.cells())


class TestMisbehaviorCell:
    def test_misbehavior_block_recorded(self):
        [cell] = small_spec(
            protocols=(ProtocolSpec("ls-hbh"),),
            failures=(FailureSpec(),),
            misbehaviors=(MisbehaviorSpec(lie="route-leak", liar_role="regional"),),
        ).cells()
        record = execute_cell(cell)
        block = record.misbehavior
        assert block is not None
        assert block["lie"] == "route-leak"
        assert block["applied"]
        assert block["liar"] in block["suspects"]
        assert isinstance(block["blast_series"], list)
        assert block["peak_blast"] >= block["steady_blast"] >= 0
        assert block["validation"] == "none"
        # The pulse ran with the hijack verdict available.
        assert record.robustness is not None
        assert "hijacked" in record.robustness["counts"]

    def test_inert_misbehavior_leaves_record_byte_identical(self):
        base = small_spec(
            protocols=(ProtocolSpec("ls-hbh"),),
            failures=(FailureSpec(),),
        )
        explicit = small_spec(
            protocols=(ProtocolSpec("ls-hbh"),),
            failures=(FailureSpec(),),
            misbehaviors=(MisbehaviorSpec(),),
        )
        [a] = (execute_cell(c) for c in base.cells())
        [b] = (execute_cell(c) for c in explicit.cells())
        assert a.comparable() == b.comparable()
        assert a.misbehavior is None

    def test_lie_free_validating_cell_records_counters(self):
        # The zero-false-quarantine baseline claim needs the counters
        # even when nobody lies.
        [cell] = small_spec(
            protocols=(
                ProtocolSpec("ls-hbh", options=(("validation", "all"),)),
            ),
            failures=(FailureSpec(),),
        ).cells()
        record = execute_cell(cell)
        block = record.misbehavior
        assert block is not None
        assert not block["applied"]
        assert block["liar"] is None
        assert block["counters"]["violations"] == 0
        assert block["counters"]["false_quarantines"] == 0


class TestExecuteCell:
    def test_record_shape(self):
        [cell] = small_spec(
            protocols=(ProtocolSpec("orwg"),),
            failures=(FailureSpec(kind="random", count=1, repair=True, seed=3),),
        ).cells()
        record = execute_cell(cell)
        assert record.schema_version == SCHEMA_VERSION
        assert record.initial.kind == "initial"
        # One failure + one repair after the initial episode.
        assert [ep.kind for ep in record.failure_episodes] == ["failure", "repair"]
        assert all(ep.link is not None for ep in record.failure_episodes)
        assert record.quiesced
        assert record.initial.messages > 0
        assert record.route_quality is not None
        assert 0.0 <= record.route_quality["availability"] <= 1.0
        assert sum(record.computations.values()) == sum(
            record.computations_by_ad.values()
        )
        assert record.state["max_rib"] > 0
        # Profiling hooks fired for every phase that ran.
        for phase in ("scenario", "build", "converge", "failures", "engine.run"):
            assert phase in record.timings

    def test_quiesced_false_when_budget_exhausted(self):
        [cell] = small_spec(
            protocols=(ProtocolSpec("naive-dv"),),
            failures=(FailureSpec(),),
            max_events=10,
        ).cells()
        record = execute_cell(cell)
        assert not record.initial.quiesced
        assert not record.quiesced

    def test_trace_lines_collected(self):
        [cell] = small_spec(
            protocols=(ProtocolSpec("naive-dv"),),
            failures=(FailureSpec(),),
            trace="ad=0",
        ).cells()
        record = execute_cell(cell)
        assert record.trace
        assert all(("-> 0" in line or "0 ->" in line) for line in record.trace)

    def test_parse_trace(self):
        assert _parse_trace(None) is None
        assert _parse_trace("all") == {"ad": None}
        assert _parse_trace("ad=7") == {"ad": 7}
        with pytest.raises(ValueError, match="bad trace filter"):
            _parse_trace("ad=x")


class TestSession:
    def test_parallel_equals_serial(self):
        spec = small_spec()
        serial = ExperimentSession(spec).run(jobs=1)
        parallel = ExperimentSession(spec).run(jobs=2)
        assert [r.comparable() for r in serial] == [
            r.comparable() for r in parallel
        ]

    def test_records_sorted_by_cell_index(self):
        records = run_spec(small_spec())
        assert [r.cell["index"] for r in records] == list(range(len(records)))

    def test_persists_jsonl(self, tmp_path):
        session = ExperimentSession(small_spec(), out_dir=str(tmp_path))
        records = session.run()
        assert session.jsonl_path == str(tmp_path / "t.jsonl")
        back = read_jsonl(session.jsonl_path)
        assert [r.comparable() for r in back] == [r.comparable() for r in records]


class TestRecordSerde:
    def test_round_trip(self, tmp_path):
        records = run_spec(small_spec(protocols=(ProtocolSpec("idrp"),)))
        path = str(tmp_path / "x.jsonl")
        write_jsonl(path, records)
        back = read_jsonl(path)
        assert len(back) == len(records)
        assert back[0].comparable() == records[0].comparable()
        # Timings survive serialization too (they are just not comparable).
        assert back[0].timings == records[0].timings

    def test_rejects_wrong_schema_version(self):
        line = json.dumps({"schema_version": SCHEMA_VERSION + 1})
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_json(line)

    def test_v2_lines_migrate_to_v3(self):
        # A v2 line predates the misbehavior axis entirely: no top-level
        # block, no cell key.  It must load with both defaulted.
        [record] = run_spec(
            small_spec(protocols=(ProtocolSpec("idrp"),), failures=(FailureSpec(),))
        )
        v2 = json.loads(record.to_json())
        v2["schema_version"] = 2
        del v2["misbehavior"]
        del v2["cell"]["misbehavior"]
        back = RunRecord.from_json(json.dumps(v2))
        assert back.schema_version == SCHEMA_VERSION
        assert back.misbehavior is None
        assert back.cell["misbehavior"] == "none"
        # Migration reconstructs exactly what a v3 writer records for an
        # inert misbehavior axis: the round trip is lossless.
        assert back.comparable() == record.comparable()

    def test_episode_link_round_trips_as_tuple(self):
        ep = EpisodeRecord(
            kind="failure", messages=1, bytes=2, time=3.0, events=4,
            quiesced=True, link=(5, 6),
        )
        record = RunRecord(
            schema_version=SCHEMA_VERSION,
            experiment="t",
            cell={"index": 0},
            scenario={},
            episodes=(ep,),
            messages={},
            message_bytes={},
            dropped=0,
            computations={},
            computations_by_ad={},
            state={},
        )
        back = RunRecord.from_json(record.to_json())
        assert back.episodes[0].link == (5, 6)


class TestNamedExperiments:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("nope")

    def test_smoke_renames_artifacts(self, tmp_path):
        spec, records, text = run_experiment(
            "table1_design_space", smoke=True, runs_dir=str(tmp_path)
        )
        assert spec.name == "table1_design_space_smoke"
        assert os.path.exists(tmp_path / "table1_design_space_smoke.jsonl")
        assert len(records) == 8
        assert "Table 1 (measured)" in text

    def test_parse_liar(self):
        assert _parse_liar("ad=7") == {"liar_ad": 7, "liar_role": "backbone"}
        assert _parse_liar("stub") == {"liar_ad": -1, "liar_role": "stub"}
        with pytest.raises(ValueError, match="bad liar"):
            _parse_liar("ad=three")
        with pytest.raises(ValueError, match="bad liar"):
            _parse_liar("tier-1")

    def test_bad_lie_override_rejected(self):
        with pytest.raises(ValueError, match="bad lie"):
            run_experiment("robustness_misbehavior", smoke=True, lie="perjury")

    def test_e12_smoke_grid(self, tmp_path):
        spec, records, text = run_experiment(
            "robustness_misbehavior", smoke=True, runs_dir=str(tmp_path)
        )
        # 2 protocols x {plain, +v} x {baseline, backbone leak}.
        assert len(records) == 8
        assert {p.display for p in spec.protocols} == {
            "ls-hbh", "ls-hbh+v", "orwg", "orwg+v",
        }
        assert [m.display for m in spec.misbehaviors] == [
            "baseline", "route-leak@backbone",
        ]
        for record in records:
            if record.cell["misbehavior"] == "route-leak@backbone":
                assert record.misbehavior is not None
                assert record.misbehavior["applied"]
        assert "steady" in text and "route-leak@backbone" in text

    def test_liar_and_lie_overrides_rewrite_the_axis(self, tmp_path):
        spec, records, _ = run_experiment(
            "robustness_misbehavior",
            smoke=True,
            runs_dir=str(tmp_path),
            liar="ad=4",
            lie="metric-lie",
        )
        # Baseline and leak points collapse onto one overridden liar.
        assert [m.display for m in spec.misbehaviors] == ["metric-lie@ad=4"]
        assert all(r.misbehavior["liar"] == 4 for r in records)


class TestOverloadFaultSpec:
    def test_churn_and_queue_activate_the_axis(self):
        churn = FaultSpec(churn_hz=0.1)
        assert churn.churns and churn.active and not churn.queued
        queue = FaultSpec(queue_capacity=8)
        assert queue.queued and queue.active and not queue.churns

    def test_display_summarizes_storm_and_queue(self):
        assert FaultSpec(churn_hz=0.25, queue_capacity=4).display == (
            "churn=0.25Hz,queue=4"
        )

    def test_horizon_covers_the_storm(self):
        fault = FaultSpec(
            churn_hz=0.1, churn_duration=50.0, start_time=100.0, spacing=100.0
        )
        assert fault.horizon == 100.0 + 50.0 + 100.0

    def test_build_plan_appends_the_storm(self):
        from repro.faults.plan import LinkFault

        graph = ScenarioSpec(kind="small", seed=3).build().graph
        plan = FaultSpec(
            churn_hz=0.1, churn_links=1, churn_duration=20.0
        ).build_plan(graph)
        assert len(plan) == 4  # two down/up cycles
        assert all(isinstance(e, LinkFault) for e in plan)


class TestOverloadCell:
    def test_overload_block_recorded(self):
        [cell] = small_spec(
            protocols=(ProtocolSpec("ls-hbh", options=(("pacing", "all"),)),),
            failures=(FailureSpec(),),
            faults=(FaultSpec(queue_capacity=8, flaps=1, seed=4, probe_flows=4),),
        ).cells()
        record = execute_cell(cell)
        block = record.overload
        assert block is not None
        assert block["capacity"] == 8
        assert block["policy"] == "tail-drop"
        assert block["served"] > 0
        assert block["pacing"] == "pace+holddown+damp"
        for key in (
            "peak_depth", "dropped", "duty_cycle",
            "suppressed_announcements", "paced_deferrals",
            "flaps", "suppressions",
        ):
            assert key in block

    def test_pacing_alone_records_the_block(self):
        [cell] = small_spec(
            protocols=(ProtocolSpec("ls-hbh", options=(("pacing", "pace"),)),),
            failures=(FailureSpec(),),
        ).cells()
        record = execute_cell(cell)
        assert record.overload is not None
        assert record.overload["pacing"] == "pace"
        assert "capacity" not in record.overload

    def test_queue_free_unpaced_record_has_no_block(self):
        [cell] = small_spec(
            protocols=(ProtocolSpec("ls-hbh"),), failures=(FailureSpec(),)
        ).cells()
        assert execute_cell(cell).overload is None


class TestSchemaV4:
    def test_v3_lines_migrate_to_v4(self):
        [record] = run_spec(
            small_spec(protocols=(ProtocolSpec("idrp"),), failures=(FailureSpec(),))
        )
        v3 = json.loads(record.to_json())
        v3["schema_version"] = 3
        del v3["overload"]
        back = RunRecord.from_json(json.dumps(v3))
        assert back.schema_version == SCHEMA_VERSION
        assert back.overload is None
        assert back.comparable() == record.comparable()


class TestChurnExperiment:
    def test_e13_smoke_grid(self, tmp_path):
        spec, records, text = run_experiment(
            "robustness_churn", smoke=True, runs_dir=str(tmp_path)
        )
        # 2 protocols x {raw, +h, +pd} x one storm point.
        assert len(records) == 6
        assert {p.display for p in spec.protocols} == {
            "ls-hbh", "ls-hbh+h", "ls-hbh+pd",
            "orwg", "orwg+h", "orwg+pd",
        }
        assert [f.display for f in spec.faults] == ["0.25Hz/q4"]
        for record in records:
            assert record.overload is not None
            assert record.overload["capacity"] == 4
            assert record.robustness["samples"] > 0
        assert "E13" in text and "duty" in text

    def test_e13_overrides_rewrite_the_axes(self, tmp_path):
        spec, records, _ = run_experiment(
            "robustness_churn",
            smoke=True,
            runs_dir=str(tmp_path),
            queue_capacity=2,
            churn_hz=0.5,
            pacing="off",
        )
        assert [(f.churn_hz, f.queue_capacity) for f in spec.faults] == [
            (0.5, 2)
        ]
        assert all(
            dict(p.options).get("pacing") is None for p in spec.protocols
        )
        assert all(r.overload["capacity"] == 2 for r in records)
