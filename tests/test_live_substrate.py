"""The live asyncio/UDP substrate: lifecycle, timers, crash/restart.

The same protocol code that runs in the discrete-event engine runs here
over real loopback sockets; these tests pin the transport contract (the
clock, the timer semantics, the node lifecycle) and the headline
behaviours: a live run converges to the same routes as a sim run, and a
killed-and-restarted AD relearns the internet, honouring the
non-volatile state carried across a stateless restart.
"""

import asyncio

import pytest

from repro.faults.plan import FaultPlan, LinkFault, NodeFault
from repro.live import (
    LiveClock,
    LiveNetwork,
    NodeState,
    fidelity_report,
    format_report,
    run_live,
    settle,
)
from repro.policy.flows import FlowSpec
from repro.policy.generators import open_policies
from repro.protocols.registry import make_protocol
from repro.simul.runner import converge
from repro.simul.transport import TimerHandle

from .helpers import mk_graph

#: Fast-but-safe live timing for tests: 2 ms per protocol unit, settle
#: after 50 ms of silence, give up after a minute of wall clock.
TIME_SCALE = 0.002
SETTLE = dict(time_scale=TIME_SCALE, idle_window_s=0.05, timeout_s=60.0)


def ring8():
    """Eight transit ADs in a ring: every link is flap/crash-safe."""
    return mk_graph(
        [(i, "Rt") for i in range(8)],
        [(i, (i + 1) % 8) for i in range(8)],
    )


def _live_protocol(graph):
    policies = open_policies(graph).policies
    return make_protocol("plain-ls", graph, policies, substrate="live")


def _sim_routes(graph):
    """Converged sim forwarding as ground truth for the live run."""
    proto = make_protocol("plain-ls", graph.copy(),
                          open_policies(graph).policies.copy())
    converge(proto.build())
    return proto


def _all_pairs(graph):
    ads = sorted(graph.ad_ids())
    return [FlowSpec(src=s, dst=d) for s in ads for d in ads if s != d]


# ------------------------------------------------------------------ clock


def test_live_timer_fires_and_cancel_after_fire_is_harmless():
    async def scenario():
        clock = LiveClock(asyncio.get_running_loop(), time_scale=0.001)
        fired = []
        handle = clock.call_later(5.0, fired.append, "a")
        assert isinstance(handle, TimerHandle)
        assert clock.pending_timers == 1
        await asyncio.sleep(0.05)
        assert fired == ["a"]
        assert clock.pending_timers == 0
        # The transport-wide contract: cancelling a fired timer is a
        # no-op, idempotent, and never corrupts the pending count.
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        assert clock.pending_timers == 0

    asyncio.run(scenario())


def test_live_timer_cancel_before_fire_prevents_firing():
    async def scenario():
        clock = LiveClock(asyncio.get_running_loop(), time_scale=0.001)
        fired = []
        handle = clock.call_later(5.0, fired.append, "a")
        handle.cancel()
        assert clock.pending_timers == 0
        await asyncio.sleep(0.02)
        assert fired == []

    asyncio.run(scenario())


def test_live_clock_runs_in_protocol_units():
    async def scenario():
        clock = LiveClock(asyncio.get_running_loop(), time_scale=0.001)
        await asyncio.sleep(0.02)
        assert clock.now >= 15.0  # ~20 units elapsed, generous margin

    asyncio.run(scenario())


# ------------------------------------------------------------------ smoke


def test_smoke_8ads_converges_to_sim_routes():
    graph = ring8()
    proto = _live_protocol(graph.copy())
    result = run_live(proto, **SETTLE)
    assert result.quiesced
    assert result.initial.messages > 0

    reference = _sim_routes(graph)
    for flow in _all_pairs(graph):
        assert proto.find_route(flow) == reference.find_route(flow), flow


def test_smoke_8ads_link_flap_episodes():
    graph = ring8()
    proto = _live_protocol(graph.copy())
    plan = FaultPlan((LinkFault(10.0, 0, 1, up=False),
                      LinkFault(20.0, 0, 1, up=True)))
    result = run_live(proto, plan, **SETTLE)
    assert result.quiesced
    assert [ep.label for ep in result.episodes] == [
        "link 0-1 down", "link 0-1 up",
    ]
    # Both episodes cost something: the flap was actually noticed.
    assert all(ep.result.messages > 0 for ep in result.episodes)
    reference = _sim_routes(graph)
    for flow in _all_pairs(graph):
        assert proto.find_route(flow) == reference.find_route(flow), flow


def test_lifecycle_states_after_close():
    graph = ring8()
    proto = _live_protocol(graph.copy())
    run_live(proto, **SETTLE)
    network = proto.network
    assert isinstance(network, LiveNetwork)
    states = network.lifecycle_states()
    assert set(states) == set(graph.ad_ids())
    assert all(state is NodeState.STOPPED for state in states.values())


def test_send_to_non_neighbor_rejected():
    async def scenario():
        graph = ring8()
        proto = _live_protocol(graph)
        network = LiveNetwork(proto.graph, time_scale=TIME_SCALE)
        proto.build(network=network)
        await network.start()
        try:
            await settle(network, idle_window_s=0.05, timeout_s=60.0)
            from repro.protocols.egp import NRAck

            with pytest.raises(ValueError, match="not neighbour"):
                network.send(0, 4, NRAck(seq=1))
        finally:
            await network.close()

    asyncio.run(scenario())


# -------------------------------------------------------------- crash/restart


def test_stateless_restart_reconverges_and_inherits_nonvolatile():
    async def scenario():
        graph = ring8()
        proto = _live_protocol(graph)
        network = LiveNetwork(proto.graph, time_scale=TIME_SCALE)
        proto.build(network=network)
        await network.start()
        assert await settle(network, idle_window_s=0.05, timeout_s=60.0)

        victim = 3
        old_node = network.nodes[victim]
        old_seq = old_node._seq
        assert old_seq > 0  # it originated at least one LSA

        proto.crash_node(victim, retain_state=False)
        assert network.is_crashed(victim)
        assert await settle(network, idle_window_s=0.05, timeout_s=60.0)

        proto.restore_node(victim)
        assert not network.is_crashed(victim)
        assert await settle(network, idle_window_s=0.05, timeout_s=60.0)

        new_node = network.nodes[victim]
        # The process was replaced wholesale...
        assert new_node is not old_node
        # ...but the NVRAM seq register survived (inherit_nonvolatile),
        # so its post-restart LSAs are not rejected as stale replays.
        assert new_node._seq > old_seq
        return graph, proto

    graph, proto = asyncio.run(scenario())
    reference = _sim_routes(graph)
    for flow in _all_pairs(graph):
        assert proto.find_route(flow) == reference.find_route(flow), flow


def test_node_fault_plan_drives_crash_restart():
    graph = ring8()
    proto = _live_protocol(graph.copy())
    plan = FaultPlan((NodeFault(10.0, 5, up=False, retain_state=False),
                      NodeFault(40.0, 5, up=True, retain_state=False)))
    result = run_live(proto, plan, **SETTLE)
    assert result.quiesced
    assert not proto.is_crashed(5)
    reference = _sim_routes(graph)
    for flow in _all_pairs(graph):
        assert proto.find_route(flow) == reference.find_route(flow), flow


# ---------------------------------------------------------------- fidelity


def test_fidelity_small_scenario_routes_identical():
    report = fidelity_report(
        protocol="plain-ls",
        scenario="small",
        seed=0,
        flaps=2,
        time_scale=TIME_SCALE,
        timeout_s=120.0,
    )
    assert report.live_quiesced
    assert report.routes_identical, format_report(report)
    assert report.pairs_compared == report.ads * (report.ads - 1)
    # One initial episode plus down+up per flap, on both substrates.
    assert len(report.sim_times) == 1 + 2 * report.flaps
    assert len(report.live_times) == len(report.sim_times)
    assert "IDENTICAL" in format_report(report)


# ------------------------------------------------------------------ misuse


def test_run_live_rejects_prebuilt_protocol():
    graph = ring8()
    policies = open_policies(graph).policies
    proto = make_protocol("plain-ls", graph, policies)
    proto.build()
    with pytest.raises(RuntimeError, match="already built"):
        run_live(proto)


def test_sim_only_machinery_raises_on_live():
    async def scenario():
        graph = ring8()
        network = LiveNetwork(graph, time_scale=TIME_SCALE)
        with pytest.raises(NotImplementedError):
            network.set_channel(None)
        with pytest.raises(NotImplementedError):
            network.set_ingress(None)

    asyncio.run(scenario())


def test_converge_refuses_live_substrate():
    graph = ring8()
    proto = _live_protocol(graph)

    async def scenario():
        network = LiveNetwork(proto.graph, time_scale=TIME_SCALE)
        proto.build(network=network)
        with pytest.raises(RuntimeError, match="live"):
            proto.converge()
        await network.close()

    asyncio.run(scenario())
