"""Tests for the partial ordering and the up/down rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.adgraph.partial_order import (
    Direction,
    OrderConflictError,
    PartialOrder,
    order_from_constraints,
    try_order_from_constraints,
)


class TestHierarchyOrder:
    def test_ranks_follow_levels(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        assert order.rank(0) == 3  # backbone
        assert order.rank(1) == 2  # regional
        assert order.rank(3) == 0  # campus

    def test_direction_up_toward_backbone(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        assert order.direction(3, 1) is Direction.UP
        assert order.direction(1, 3) is Direction.DOWN
        assert order.direction(1, 0) is Direction.UP

    def test_equal_ranks_break_ties_deterministically(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        # Regionals 1 and 2 have equal rank; refinement favours lower id.
        assert not order.comparable(1, 2)
        d12 = order.direction(1, 2)
        d21 = order.direction(2, 1)
        assert {d12, d21} == {Direction.UP, Direction.DOWN}

    def test_direction_rejects_self(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        with pytest.raises(ValueError):
            order.direction(1, 1)


class TestUpDownRule:
    def test_pure_up_then_down_valid(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        assert order.path_is_valid([3, 1, 0, 2, 5])

    def test_up_after_down_invalid(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        # 0 -> 1 (down) then 1 -> 0 impossible (loop), use 3->1->3? invalid
        # as loop too; construct down-then-up: backbone -> regional ->
        # backbone-bypass campus -> backbone would be 0,1,... use 1->3
        # (down) then 3->0 (up, via bypass link).
        assert not order.path_is_valid([1, 3, 0])

    def test_single_node_and_single_hop(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        assert order.path_is_valid([3])
        assert order.path_is_valid([3, 1])
        assert order.path_is_valid([1, 3])

    def test_max_valid_path_len_bound(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        assert order.max_valid_path_len() == 2 * hierarchy.num_ads


class TestOrderFromConstraints:
    def test_simple_chain(self):
        order = order_from_constraints([1, 2, 3], [(1, 2), (2, 3)])
        assert order.rank(1) < order.rank(2) < order.rank(3)

    def test_unconstrained_share_rank_zero(self):
        order = order_from_constraints([1, 2, 3], [])
        assert order.rank(1) == order.rank(2) == order.rank(3) == 0

    def test_diamond_constraints(self):
        order = order_from_constraints(
            [1, 2, 3, 4], [(1, 2), (1, 3), (2, 4), (3, 4)]
        )
        assert order.rank(1) < order.rank(2)
        assert order.rank(1) < order.rank(3)
        assert order.rank(2) < order.rank(4)
        assert order.rank(3) < order.rank(4)

    def test_cycle_raises_with_cycle_attached(self):
        with pytest.raises(OrderConflictError) as exc:
            order_from_constraints([1, 2, 3], [(1, 2), (2, 3), (3, 1)])
        cycle = exc.value.cycle
        assert set(cycle) <= {1, 2, 3}
        assert len(cycle) >= 2

    def test_self_constraint_conflicts(self):
        with pytest.raises(OrderConflictError):
            order_from_constraints([1], [(1, 1)])

    def test_unknown_ad_rejected(self):
        with pytest.raises(ValueError):
            order_from_constraints([1], [(1, 9)])

    def test_try_variant_returns_none_on_conflict(self):
        assert try_order_from_constraints([1, 2], [(1, 2), (2, 1)]) is None
        assert try_order_from_constraints([1, 2], [(1, 2)]) is not None

    def test_duplicate_constraints_ignored(self):
        order = order_from_constraints([1, 2], [(1, 2), (1, 2)])
        assert order.rank(1) < order.rank(2)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(2, 12),
    edges=st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=30),
)
def test_constraints_always_satisfied_or_conflict(n, edges):
    """Property: order_from_constraints either satisfies every constraint
    strictly or raises OrderConflictError -- never a silent violation."""
    ads = list(range(n))
    constraints = [(a % n, b % n) for a, b in edges if a % n != b % n]
    try:
        order = order_from_constraints(ads, constraints)
    except OrderConflictError:
        return
    for lower, upper in constraints:
        assert order.rank(lower) < order.rank(upper)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500))
def test_valley_free_composition(seed):
    """Property: extending a valid path with an up-hop keeps it valid only
    in the up phase; the flag composition used by ECMA matches
    path_is_valid on random walks."""
    import random

    g = generate_internet(TopologyConfig(seed=seed % 7))
    order = PartialOrder.from_hierarchy(g)
    rng = random.Random(seed)
    node = rng.choice(g.ad_ids())
    path = [node]
    for _ in range(6):
        nbrs = g.neighbors(path[-1])
        if not nbrs:
            break
        path.append(rng.choice(nbrs))
    # Recompute validity via the incremental rule ECMA uses.
    gone_down = False
    valid = True
    for frm, to in zip(path, path[1:]):
        d = order.direction(frm, to)
        if d is Direction.DOWN:
            gone_down = True
        elif gone_down:
            valid = False
            break
    assert valid == order.path_is_valid(path)
