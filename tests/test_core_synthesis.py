"""Tests for policy route synthesis, including exactness properties."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.core.synthesis import (
    RouteSynthesizer,
    SynthesisStats,
    exhaustive_best_path,
    k_alternative_routes,
    route_charges,
    synthesize_route,
)
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import restricted_policies
from repro.policy.legality import is_legal_path, path_cost
from repro.policy.selection import RouteSelectionPolicy
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from tests.helpers import diamond_graph, line_graph, open_db


class TestBasicSynthesis:
    def test_prefers_cheap_path(self):
        g = diamond_graph()
        route = synthesize_route(g, open_db(g), FlowSpec(0, 3))
        assert route.path == (0, 1, 3)
        assert route.cost == 2.0

    def test_qos_switches_metric(self):
        g = diamond_graph()
        from repro.policy.qos import QOS

        route = synthesize_route(g, open_db(g), FlowSpec(0, 3, qos=QOS.LOW_COST))
        # Both paths cost 2 under "cost"; the tie breaks deterministically.
        assert route is not None
        assert route.path in {(0, 1, 3), (0, 2, 3)}

    def test_no_transit_policy_blocks(self):
        g = line_graph(3)
        route = synthesize_route(g, PolicyDatabase(), FlowSpec(0, 2))
        assert route is None
        # Direct neighbours still reachable.
        assert synthesize_route(g, PolicyDatabase(), FlowSpec(0, 1)) is not None

    def test_trivial_flow(self):
        g = line_graph(2)
        route = synthesize_route(g, PolicyDatabase(), FlowSpec(0, 0))
        assert route.path == (0,)
        assert route.cost == 0.0

    def test_down_link_avoided(self):
        g = diamond_graph()
        g.set_link_status(0, 1, up=False)
        route = synthesize_route(g, open_db(g), FlowSpec(0, 3))
        assert route.path == (0, 2, 3)

    def test_charges_accumulated(self):
        g = line_graph(4)
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, charge=2.0))
        db.add_term(PolicyTerm(owner=2, charge=3.0))
        route = synthesize_route(g, db, FlowSpec(0, 3))
        assert route.charges == 5.0
        assert route_charges(g, db, route.path, route.flow) == 5.0


class TestSelectionCriteria:
    def test_avoid_forces_detour(self):
        g = diamond_graph()
        sel = RouteSelectionPolicy(avoid_ads=frozenset({1}))
        route = synthesize_route(g, open_db(g), FlowSpec(0, 3), sel)
        assert route.path == (0, 2, 3)

    def test_avoid_can_make_unreachable(self):
        g = line_graph(3)
        sel = RouteSelectionPolicy(avoid_ads=frozenset({1}))
        assert synthesize_route(g, open_db(g), FlowSpec(0, 2), sel) is None

    def test_require_forces_expensive_path(self):
        g = diamond_graph()
        sel = RouteSelectionPolicy(require_ads=frozenset({2}))
        route = synthesize_route(g, open_db(g), FlowSpec(0, 3), sel)
        assert route.path == (0, 2, 3)

    def test_max_hops(self):
        g = diamond_graph()
        # Make the one-hop-longer path impossible within 1 hop.
        sel = RouteSelectionPolicy(max_hops=1)
        assert synthesize_route(g, open_db(g), FlowSpec(0, 3), sel) is None
        sel2 = RouteSelectionPolicy(max_hops=2)
        assert synthesize_route(g, open_db(g), FlowSpec(0, 3), sel2) is not None

    def test_charge_weight_changes_winner(self):
        g = diamond_graph()
        db = PolicyDatabase()
        # Cheap-delay AD 1 charges heavily; AD 2 is free.
        db.add_term(PolicyTerm(owner=1, charge=100.0))
        db.add_term(PolicyTerm(owner=2, charge=0.0))
        free = synthesize_route(g, db, FlowSpec(0, 3))
        assert free.path == (0, 1, 3)
        sel = RouteSelectionPolicy(charge_weight=1.0)
        paid = synthesize_route(g, db, FlowSpec(0, 3), sel)
        assert paid.path == (0, 2, 3)


class TestEntryExitConstraints:
    def test_prev_constraint_respected(self):
        g = diamond_graph()
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, prev_ads=ADSet.of([3])))  # wrong way
        db.add_term(PolicyTerm(owner=2))
        route = synthesize_route(g, db, FlowSpec(0, 3))
        assert route.path == (0, 2, 3)

    def test_next_constraint_respected(self):
        g = diamond_graph()
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, next_ads=ADSet.of([0])))
        db.add_term(PolicyTerm(owner=2))
        route = synthesize_route(g, db, FlowSpec(0, 3))
        assert route.path == (0, 2, 3)


class TestKAlternatives:
    def test_alternatives_distinct_and_ranked(self):
        g = diamond_graph()
        routes = k_alternative_routes(g, open_db(g), FlowSpec(0, 3), k=3)
        assert [r.path for r in routes] == [(0, 1, 3), (0, 2, 3)]
        assert routes[0].cost <= routes[1].cost

    def test_no_route_yields_empty(self):
        g = line_graph(3)
        assert k_alternative_routes(g, PolicyDatabase(), FlowSpec(0, 2)) == []

    def test_k_one(self):
        g = diamond_graph()
        routes = k_alternative_routes(g, open_db(g), FlowSpec(0, 3), k=1)
        assert len(routes) == 1

    def test_invalid_k(self):
        g = diamond_graph()
        with pytest.raises(ValueError):
            k_alternative_routes(g, open_db(g), FlowSpec(0, 3), k=0)


class TestSynthesizer:
    def test_stats_accumulate(self):
        g = diamond_graph()
        syn = RouteSynthesizer(g, open_db(g))
        syn.route(FlowSpec(0, 3))
        syn.route(FlowSpec(3, 0))
        assert syn.stats.dijkstra_runs == 2
        assert syn.stats.routes_found == 2
        assert syn.stats.states_expanded > 0

    def test_verify(self):
        g = diamond_graph()
        syn = RouteSynthesizer(g, open_db(g))
        route = syn.route(FlowSpec(0, 3))
        assert syn.verify(route)
        g.set_link_status(0, 1, up=False)
        assert not syn.verify(route)


def _brute_force_best(graph, db, flow):
    """Reference implementation: enumerate all simple paths."""
    nxg = graph.nx_graph()
    best = None
    if flow.src not in nxg or flow.dst not in nxg:
        return None
    for path in nx.all_simple_paths(nxg, flow.src, flow.dst):
        if is_legal_path(graph, db, path, flow):
            cost = path_cost(graph, path, flow.qos.metric)
            if best is None or cost < best[0]:
                best = (cost, tuple(path))
    return best


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_synthesis_matches_brute_force(seed):
    """Property: on small random internets with restrictive policies,
    synthesize_route finds a route exactly when one exists, and it is
    cost-optimal among legal simple paths."""
    rng = random.Random(seed)
    g = generate_internet(
        TopologyConfig(
            num_backbones=1,
            regionals_per_backbone=2,
            campuses_per_parent=2,
            lateral_prob=0.5,
            bypass_prob=0.3,
            seed=seed % 50,
        )
    )
    db = restricted_policies(g, restrictiveness=0.7, seed=seed).policies
    ids = g.ad_ids()
    src, dst = rng.sample(ids, 2)
    flow = FlowSpec(src, dst, hour=rng.randrange(24))
    expected = _brute_force_best(g, db, flow)
    route = synthesize_route(g, db, flow)
    if expected is None:
        assert route is None
    else:
        assert route is not None, f"missed legal route {expected[1]}"
        assert is_legal_path(g, db, route.path, flow)
        assert route.cost == pytest.approx(expected[0])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_synthesised_routes_always_legal(seed):
    """Property: any route returned is legal and loop-free."""
    g = generate_internet(TopologyConfig(seed=seed % 20, lateral_prob=0.4))
    db = restricted_policies(g, restrictiveness=0.5, seed=seed).policies
    rng = random.Random(seed)
    for _ in range(5):
        src, dst = rng.sample(g.ad_ids(), 2)
        flow = FlowSpec(src, dst, hour=rng.randrange(24))
        route = synthesize_route(g, db, flow)
        if route is not None:
            assert route.is_loop_free
            assert is_legal_path(g, db, route.path, flow)


class TestFallback:
    def test_loopy_walk_falls_back_to_exact_search(self):
        """Entry constraints can make the optimal walk revisit an AD; the
        fallback must still find the legal simple path (or prove absence)."""
        # Build: 0 - 1 - 2 - 3 with a shortcut 1 - 3, where AD 3's policy
        # only accepts packets arriving from 2, and AD 2 only accepts
        # packets arriving from 1.  A walk 0,1,3 is illegal; 0,1,2,3 legal.
        g = line_graph(4)
        g.connect(1, 3, metrics={"delay": 0.5, "cost": 1.0})
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1))
        db.add_term(PolicyTerm(owner=2, prev_ads=ADSet.of([1])))
        route = synthesize_route(g, db, FlowSpec(0, 3))
        assert route is not None
        assert route.is_loop_free

    def test_exhaustive_respects_budget(self):
        g = generate_internet(TopologyConfig(seed=0))
        db = open_db(g)
        stats = SynthesisStats()
        flow = FlowSpec(g.ad_ids()[0], g.ad_ids()[-1])
        path = exhaustive_best_path(g, db, flow, budget=1, stats=stats)
        # With budget 1 only the root expands; no multi-hop path found.
        assert stats.fallback_runs == 1
        assert path is None or len(path) <= 2
