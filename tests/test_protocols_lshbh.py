"""Tests for the LS / hop-by-hop / policy-terms design point."""


from repro.core.evaluation import evaluate_availability, sample_flows
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import source_class_policies
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from tests.helpers import mk_graph, open_db


class TestRouting:
    def test_policy_respected(self, diamond):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=2))  # only the expensive transit
        proto = LinkStateHopByHopProtocol(diamond, db)
        proto.converge()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 2, 3)

    def test_full_availability(self, gen_graph, gen_restricted):
        proto = LinkStateHopByHopProtocol(gen_graph, gen_restricted)
        proto.converge()
        flows = sample_flows(gen_graph, 30, seed=6)
        report = evaluate_availability(
            gen_graph, gen_restricted, flows, proto.find_route
        )
        assert report.availability == 1.0
        assert report.n_illegal == 0

    def test_source_specific_routing(self):
        """Two sources get different legal routes through the same
        destination -- no single spanning tree can serve both."""
        g = mk_graph(
            [(0, "Cs"), (4, "Cs"), (1, "Rt"), (2, "Rt"), (3, "Cs")],
            [(0, 1), (0, 2), (4, 1), (4, 2), (1, 3), (2, 3)],
        )
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, sources=ADSet.of([0])))
        db.add_term(PolicyTerm(owner=2, sources=ADSet.of([4])))
        proto = LinkStateHopByHopProtocol(g, db)
        proto.converge()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 3)
        assert proto.find_route(FlowSpec(4, 3)) == (4, 2, 3)

    def test_no_loops(self, gen_graph, gen_restricted):
        proto = LinkStateHopByHopProtocol(gen_graph, gen_restricted)
        proto.converge()
        for flow in sample_flows(gen_graph, 40, seed=8):
            proto.find_route(flow)
        assert proto.forwarding_loops == 0


class TestReplicatedComputation:
    def test_every_transit_recomputes_the_source_route(self, diamond):
        proto = LinkStateHopByHopProtocol(diamond, open_db(diamond))
        proto.converge()
        flow = FlowSpec(0, 3)
        path = proto.find_route(flow)
        assert path == (0, 1, 3)
        # Both on-path ADs (source and transit) computed the same route.
        assert proto.computation_burden(0) == 1
        assert proto.computation_burden(1) == 1

    def test_burden_grows_with_flow_classes(self, gen_graph):
        """The E5 mechanism: distinct (source, class) flows each force a
        fresh route computation at every on-path transit AD."""
        scen = source_class_policies(gen_graph, 4, seed=1)
        proto = LinkStateHopByHopProtocol(gen_graph, scen.policies)
        proto.converge()
        flows = sample_flows(gen_graph, 25, seed=9)
        for flow in flows:
            proto.find_route(flow)
        burdens = [
            proto.computation_burden(a.ad_id) for a in gen_graph.transit_ads()
        ]
        assert sum(burdens) > 0
        # Re-walking the same flows is free (cached per LSDB version).
        before = sum(burdens)
        for flow in flows:
            proto.find_route(flow)
        after = sum(
            proto.computation_burden(a.ad_id) for a in gen_graph.transit_ads()
        )
        assert after == before

    def test_cache_invalidated_on_topology_change(self, diamond):
        proto = LinkStateHopByHopProtocol(diamond, open_db(diamond))
        proto.converge()
        flow = FlowSpec(0, 3)
        proto.find_route(flow)
        proto.network.set_link_status(1, 3, up=False)
        proto.network.run()
        assert proto.find_route(flow) == (0, 2, 3)
