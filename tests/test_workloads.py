"""Tests for traffic matrices, request sequences, and scenarios."""

import pytest

from repro.workloads.scenarios import (
    reference_scenario,
    scaled_scenario,
    small_scenario,
)
from repro.workloads.traffic import (
    TrafficMatrix,
    gravity_traffic,
    request_sequence,
    uniform_traffic,
)
from repro.policy.flows import FlowSpec


class TestTrafficMatrices:
    def test_uniform_basics(self, gen_graph):
        tm = uniform_traffic(gen_graph, 30, seed=1)
        assert len(tm) == 30
        assert tm.total_weight == 30.0
        for flow in tm.flows:
            assert flow.src != flow.dst

    def test_uniform_deterministic(self, gen_graph):
        a = uniform_traffic(gen_graph, 10, seed=2)
        b = uniform_traffic(gen_graph, 10, seed=2)
        assert a.entries == b.entries

    def test_gravity_weights_scale_with_degree(self, gen_graph):
        tm = gravity_traffic(gen_graph, 50, seed=3)
        for flow, weight in tm.entries:
            expected = max(1, gen_graph.degree(flow.src)) * max(
                1, gen_graph.degree(flow.dst)
            )
            assert weight == float(expected)

    def test_weights_must_be_positive(self):
        with pytest.raises(ValueError):
            TrafficMatrix(((FlowSpec(1, 2), 0.0),))


class TestRequestSequence:
    def test_zipf_concentrates_requests(self, gen_graph):
        tm = uniform_traffic(gen_graph, 50, seed=4)
        flat = request_sequence(tm, 500, zipf_s=0.0, seed=5)
        skewed = request_sequence(tm, 500, zipf_s=2.0, seed=5)

        def top_share(seq):
            from collections import Counter

            counts = Counter(seq)
            return max(counts.values()) / len(seq)

        assert top_share(skewed) > top_share(flat)

    def test_length_and_membership(self, gen_graph):
        tm = uniform_traffic(gen_graph, 10, seed=6)
        seq = request_sequence(tm, 100, seed=7)
        assert len(seq) == 100
        population = set(tm.flows)
        assert all(f in population for f in seq)

    def test_validation(self, gen_graph):
        tm = uniform_traffic(gen_graph, 5, seed=8)
        with pytest.raises(ValueError):
            request_sequence(tm, -1)
        with pytest.raises(ValueError):
            request_sequence(tm, 5, zipf_s=-1.0)
        assert request_sequence(TrafficMatrix(()), 5) == []


class TestScenarios:
    def test_reference_scenario_shape(self):
        s = reference_scenario()
        assert 50 <= s.graph.num_ads <= 80
        assert len(s.flows) == 60
        assert s.policies.num_terms > 0
        assert s.graph.is_connected()

    def test_small_scenario(self):
        s = small_scenario()
        assert s.graph.num_ads <= 30

    def test_scaled_scenario_tracks_target(self):
        s = scaled_scenario(150, seed=1)
        assert 75 <= s.graph.num_ads <= 300

    def test_deterministic(self):
        a = reference_scenario(seed=5)
        b = reference_scenario(seed=5)
        assert a.graph.ad_ids() == b.graph.ad_ids()
        assert a.flows == b.flows
        assert a.policies.num_terms == b.policies.num_terms
