"""Tests for the ECMA design point (DV / HbH / policy in topology)."""

import pytest

from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import hierarchical_policies
from repro.policy.qos import QOS
from repro.policy.terms import PolicyTerm
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.ecma import ECMAProtocol, supported_qos_classes
from tests.helpers import mk_graph, open_db


@pytest.fixture
def hierarchy_proto(hierarchy):
    proto = ECMAProtocol(hierarchy, hierarchical_policies(hierarchy).policies)
    proto.converge()
    return proto


class TestBasicRouting:
    def test_routes_within_hierarchy(self, hierarchy_proto):
        assert hierarchy_proto.find_route(FlowSpec(3, 4)) == (3, 1, 4)
        path = hierarchy_proto.find_route(FlowSpec(3, 5))
        assert path is not None and path[0] == 3 and path[-1] == 5

    def test_per_qos_tables(self, hierarchy_proto):
        for qos in QOS.additive_classes():
            assert hierarchy_proto.find_route(FlowSpec(3, 6, qos=qos)) is not None

    def test_bottleneck_qos_unsupported(self, hierarchy_proto):
        # DV updates compose additively; ECMA cannot route on bandwidth.
        assert hierarchy_proto.find_route(
            FlowSpec(3, 6, qos=QOS.HIGH_BANDWIDTH)
        ) is None

    def test_rib_replicates_per_qos(self, hierarchy_proto):
        # Entries exist per (dest, qos): the per-QOS FIB replication the
        # ECMA proposal describes.
        rib = hierarchy_proto.rib_size(0)
        assert rib > hierarchy_proto.graph.num_ads

    def test_all_routes_valley_free(self, hierarchy_proto):
        order = hierarchy_proto.order
        g = hierarchy_proto.graph
        for src in g.ad_ids():
            for dst in g.ad_ids():
                if src == dst:
                    continue
                path = hierarchy_proto.find_route(FlowSpec(src, dst))
                if path is not None:
                    assert order.path_is_valid(path), (path, "violates up/down")


class TestTopologyPolicies:
    def test_stubs_never_transit(self, hierarchy_proto):
        g = hierarchy_proto.graph
        for src in g.ad_ids():
            for dst in g.ad_ids():
                if src == dst:
                    continue
                path = hierarchy_proto.find_route(FlowSpec(src, dst))
                if path is not None:
                    for transit in path[1:-1]:
                        assert g.ad(transit).kind.may_transit, (
                            f"stub AD {transit} used as transit on {path}"
                        )

    def test_qos_restriction_expressed(self):
        """An AD whose terms exclude a QOS class neither computes nor
        carries routes for it -- ECMA's 'infinite metric' mechanism."""
        g = mk_graph(
            [(0, "Cs"), (1, "Rt"), (2, "Cs")], [(0, 1), (1, 2)]
        )
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, qos_classes=frozenset({QOS.DEFAULT})))
        proto = ECMAProtocol(g, db)
        proto.converge()
        assert proto.find_route(FlowSpec(0, 2, qos=QOS.DEFAULT)) == (0, 1, 2)
        assert proto.find_route(FlowSpec(0, 2, qos=QOS.LOW_COST)) is None

    def test_source_specific_policy_not_expressible(self):
        """ECMA cannot express per-source restrictions: both sources get
        the same treatment even though the policy admits only one."""
        from repro.policy.sets import ADSet

        g = mk_graph(
            [(0, "Cs"), (1, "Rt"), (2, "Cs"), (3, "Cs")],
            [(0, 1), (3, 1), (1, 2)],
        )
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, sources=ADSet.of([0])))
        proto = ECMAProtocol(g, db)
        proto.converge()
        allowed = proto.find_route(FlowSpec(0, 2))
        forbidden = proto.find_route(FlowSpec(3, 2))
        assert allowed == (0, 1, 2)
        # ECMA still forwards the forbidden source -- an illegal route,
        # exactly the expressiveness gap of Section 5.1.1.
        assert forbidden == (3, 1, 2)
        from repro.policy.legality import is_legal_path

        assert not is_legal_path(g, db, forbidden, FlowSpec(3, 2))


class TestConvergenceBehaviour:
    def test_reroutes_after_failure(self, hierarchy):
        proto = ECMAProtocol(hierarchy, hierarchical_policies(hierarchy).policies)
        proto.converge()
        # 3 reaches backbone 0 via bypass; kill it and re-route via 1.
        assert proto.find_route(FlowSpec(3, 0)) == (3, 0)
        proto.network.set_link_status(3, 0, up=False)
        proto.network.run()
        assert proto.find_route(FlowSpec(3, 0)) == (3, 1, 0)

    def test_no_count_to_infinity(self):
        """The up/down rule suppresses the stale-route bounce that the
        naive DV baseline exhibits on the same topology."""
        from tests.test_protocols_dv import TestFailureResponse

        g = TestFailureResponse._count_to_infinity_graph()

        def cost(proto_cls, **kw):
            proto = proto_cls(g.copy(), open_db(g), **kw)
            proto.converge()
            before = proto.network.metrics.snapshot(proto.network.sim.now)
            proto.network.set_link_status(2, 3, up=False)
            proto.network.run()
            after = proto.network.metrics.snapshot(proto.network.sim.now)
            return after.delta(before).total_messages

        naive = cost(DistanceVectorProtocol, infinity=32)
        ecma = cost(ECMAProtocol)
        assert ecma < naive

    def test_repair_restores(self, hierarchy):
        proto = ECMAProtocol(hierarchy, hierarchical_policies(hierarchy).policies)
        proto.converge()
        proto.network.set_link_status(3, 0, up=False)
        proto.network.run()
        proto.network.set_link_status(3, 0, up=True)
        proto.network.run()
        # Bypass (3,0) and detour (3,1,0) tie at metric 2.0; either is a
        # correct converged answer (DV keeps the incumbent on ties).
        assert proto.find_route(FlowSpec(3, 0)) in {(3, 0), (3, 1, 0)}


class TestSupportedQOS:
    def test_no_terms_supports_all(self):
        db = PolicyDatabase()
        assert supported_qos_classes(db, 7) == frozenset(QOS.additive_classes())

    def test_union_of_term_classes(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, qos_classes=frozenset({QOS.DEFAULT})))
        db.add_term(PolicyTerm(owner=1, qos_classes=frozenset({QOS.LOW_COST})))
        assert supported_qos_classes(db, 1) == frozenset(
            {QOS.DEFAULT, QOS.LOW_COST}
        )

    def test_unconstrained_term_means_all(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, qos_classes=frozenset({QOS.DEFAULT})))
        db.add_term(PolicyTerm(owner=1))
        assert supported_qos_classes(db, 1) == frozenset(QOS.additive_classes())
