"""Tests for the EGP baseline (tree restriction, reachability only)."""

import pytest

from repro.adgraph.ad import LinkKind
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.protocols.egp import EGPProtocol, TopologyViolationError, _spanning_tree
from tests.helpers import line_graph


class TestTreeRestriction:
    def test_strict_mode_rejects_cycles(self, hierarchy):
        proto = EGPProtocol(hierarchy, PolicyDatabase(), strict=True)
        with pytest.raises(TopologyViolationError):
            proto.build()

    def test_strict_mode_accepts_trees(self):
        g = line_graph(4)
        proto = EGPProtocol(g, PolicyDatabase(), strict=True)
        proto.converge()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 2, 3)

    def test_lenient_mode_prunes_extra_links(self, hierarchy):
        proto = EGPProtocol(hierarchy, PolicyDatabase())
        proto.converge()
        # hierarchy has 8 links, 7 ADs -> tree keeps 6, prunes 2.
        assert proto.excluded_links == 2
        assert proto.tree_graph.num_links == hierarchy.num_ads - 1

    def test_spanning_tree_prefers_hierarchical_links(self, hierarchy):
        tree, _ = _spanning_tree(hierarchy)
        kinds = tree.link_kind_counts()
        # Both the lateral (1-2) and the bypass (0-3) are reachable via
        # hierarchy, so the tree should use hierarchical links only.
        assert kinds[LinkKind.LATERAL] == 0
        assert kinds[LinkKind.BYPASS] == 0


class TestReachability:
    def test_full_reachability_over_tree(self, hierarchy):
        proto = EGPProtocol(hierarchy, PolicyDatabase())
        proto.converge()
        for dst in hierarchy.ad_ids():
            if dst != 3:
                assert proto.find_route(FlowSpec(3, dst)) is not None

    def test_routes_follow_hierarchy(self, hierarchy):
        proto = EGPProtocol(hierarchy, PolicyDatabase())
        proto.converge()
        # Campus 3 to campus 5 must climb to the backbone and descend.
        assert proto.find_route(FlowSpec(3, 5)) == (3, 1, 0, 2, 5)

    def test_lateral_links_wasted(self, hierarchy):
        """The pruned lateral link can never carry traffic -- the paper's
        complaint about EGP's topology restriction."""
        proto = EGPProtocol(hierarchy, PolicyDatabase())
        proto.converge()
        path = proto.find_route(FlowSpec(4, 5))
        # Direct regional lateral 1-2 exists but EGP cannot use it.
        assert path == (4, 1, 0, 2, 5)

    def test_rib_size(self, hierarchy):
        proto = EGPProtocol(hierarchy, PolicyDatabase())
        proto.converge()
        assert proto.rib_size(0) == hierarchy.num_ads


class TestStaleness:
    def test_failure_leaves_stale_routes(self):
        """EGP does not propagate unreachability; downstream tables go
        stale, matching the protocol's real behaviour."""
        g = line_graph(4)
        proto = EGPProtocol(g, PolicyDatabase())
        proto.converge()
        proto.network.set_link_status(2, 3, up=False)
        proto.network.run()
        # AD 2 noticed the loss...
        assert proto.next_hop(2, FlowSpec(2, 3), None) is None
        # ...but AD 0 still points down the dead branch.
        assert proto.next_hop(0, FlowSpec(0, 3), None) == 1
