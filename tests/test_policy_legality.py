"""Tests for path legality -- the central predicate of the reproduction."""

import pytest

from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.legality import (
    first_violation,
    is_legal_path,
    links_exist,
    path_cost,
)
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from tests.helpers import line_graph, open_db


@pytest.fixture
def line():
    return line_graph(4)  # 0-1-2-3


@pytest.fixture
def line_db(line):
    return open_db(line)


class TestIsLegalPath:
    def test_simple_legal_path(self, line, line_db):
        assert is_legal_path(line, line_db, [0, 1, 2, 3], FlowSpec(0, 3))

    def test_endpoints_must_match_flow(self, line, line_db):
        assert not is_legal_path(line, line_db, [1, 2, 3], FlowSpec(0, 3))
        assert not is_legal_path(line, line_db, [0, 1, 2], FlowSpec(0, 3))

    def test_empty_path_illegal(self, line, line_db):
        assert not is_legal_path(line, line_db, [], FlowSpec(0, 3))

    def test_single_ad_path(self, line, line_db):
        assert is_legal_path(line, line_db, [0], FlowSpec(0, 0))
        assert not is_legal_path(line, line_db, [0], FlowSpec(0, 3))

    def test_loop_illegal(self, diamond):
        db = open_db(diamond)
        assert not is_legal_path(
            diamond, db, [0, 1, 3, 2, 0], FlowSpec(0, 0)
        )

    def test_missing_link_illegal(self, line, line_db):
        assert not is_legal_path(line, line_db, [0, 2, 3], FlowSpec(0, 3))

    def test_down_link_illegal(self, line, line_db):
        line.set_link_status(1, 2, up=False)
        assert not is_legal_path(line, line_db, [0, 1, 2, 3], FlowSpec(0, 3))

    def test_transit_without_terms_illegal(self, line):
        db = PolicyDatabase()  # nobody offers transit
        assert not is_legal_path(line, db, [0, 1, 2, 3], FlowSpec(0, 3))
        # Direct neighbours need no transit at all.
        assert is_legal_path(line, db, [0, 1], FlowSpec(0, 1))

    def test_prev_next_constraints_checked_per_hop(self, diamond):
        db = PolicyDatabase()
        # AD 1 only accepts packets arriving from 0 and departing to 3.
        db.add_term(
            PolicyTerm(owner=1, prev_ads=ADSet.of([0]), next_ads=ADSet.of([3]))
        )
        db.add_term(PolicyTerm(owner=2))
        assert is_legal_path(diamond, db, [0, 1, 3], FlowSpec(0, 3))
        assert not is_legal_path(diamond, db, [3, 1, 0], FlowSpec(3, 0))

    def test_endpoints_need_no_transit_permission(self, line):
        # Only the middle ADs have terms; source and dest have none.
        db = PolicyDatabase([PolicyTerm(owner=1), PolicyTerm(owner=2)])
        assert is_legal_path(line, db, [0, 1, 2, 3], FlowSpec(0, 3))


class TestFirstViolation:
    def test_legal_path_has_no_violation(self, line, line_db):
        assert first_violation(line, line_db, [0, 1, 2, 3], FlowSpec(0, 3)) is None

    def test_violation_messages(self, line, line_db):
        assert "starts at" in first_violation(line, line_db, [1, 3], FlowSpec(0, 3))
        assert "loop" in first_violation(
            line, line_db, [0, 1, 0], FlowSpec(0, 0)
        )
        assert "no link" in first_violation(
            line, line_db, [0, 2, 3], FlowSpec(0, 3)
        )
        line.set_link_status(0, 1, up=False)
        assert "down" in first_violation(
            line, line_db, [0, 1, 2, 3], FlowSpec(0, 3)
        )

    def test_policy_violation_names_the_ad(self, line):
        db = PolicyDatabase([PolicyTerm(owner=1)])  # AD 2 missing
        msg = first_violation(line, db, [0, 1, 2, 3], FlowSpec(0, 3))
        assert "AD 2" in msg

    def test_empty_path(self, line, line_db):
        assert first_violation(line, line_db, [], FlowSpec(0, 3)) == "empty path"

    def test_single_ad_path_legal_iff_src_is_dst(self, line, line_db):
        assert first_violation(line, line_db, [0], FlowSpec(0, 0)) is None
        # A one-AD path to somewhere else fails on the endpoint check,
        # never on transit policy (there are no transits to consult).
        assert "ends at" in first_violation(line, line_db, [0], FlowSpec(0, 3))
        assert "starts at" in first_violation(line, line_db, [1], FlowSpec(0, 3))

    def test_loop_reported_before_link_and_policy(self, line):
        # The looping path also crosses a nonexistent link and has no
        # transit terms; the loop verdict must win (it is checked on the
        # path shape alone, before any ground-truth lookups).
        db = PolicyDatabase()
        msg = first_violation(line, db, [0, 1, 0, 2, 3], FlowSpec(0, 3))
        assert msg == "path contains a loop"

    def test_loop_returning_to_source(self, line, line_db):
        msg = first_violation(line, line_db, [0, 1, 0], FlowSpec(0, 0))
        assert msg == "path contains a loop"


class TestPathCost:
    def test_sums_metric(self, diamond):
        assert path_cost(diamond, [0, 1, 3], "delay") == 2.0
        assert path_cost(diamond, [0, 2, 3], "delay") == 10.0

    def test_single_node_costs_zero(self, diamond):
        assert path_cost(diamond, [0], "delay") == 0.0

    def test_missing_link_raises(self, diamond):
        with pytest.raises(KeyError):
            path_cost(diamond, [0, 3], "delay")


def test_links_exist(line):
    assert links_exist(line, [0, 1, 2])
    assert not links_exist(line, [0, 2])
    line.set_link_status(0, 1, up=False)
    assert not links_exist(line, [0, 1])
