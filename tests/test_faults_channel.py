"""Tests for the channel impairment models."""

import pytest

from repro.faults.channel import (
    PERFECT,
    ChannelModel,
    ImpairedChannel,
    Impairment,
    link_key,
)


class TestImpairment:
    def test_defaults_are_perfect(self):
        assert Impairment().perfect
        assert PERFECT.perfect

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_prob": 0.1},
            {"dup_prob": 0.1},
            {"jitter": 2.0},
            {"burst_enter": 0.05},
        ],
    )
    def test_any_parameter_breaks_perfection(self, kwargs):
        assert not Impairment(**kwargs).perfect

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_prob": -0.1},
            {"drop_prob": 1.5},
            {"dup_prob": 2.0},
            {"burst_enter": -1.0},
            {"burst_exit": 1.1},
            {"jitter": -1.0},
        ],
    )
    def test_out_of_range_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Impairment(**kwargs)


class TestLinkKey:
    def test_canonical_order(self):
        assert link_key(3, 7) == (3, 7)
        assert link_key(7, 3) == (3, 7)
        assert link_key(5, 5) == (5, 5)


class TestBaseChannel:
    def test_perfect_delivery(self):
        ch = ChannelModel()
        assert ch.transmit(1, 2) == (0.0,)
        assert ch.counters() == {}

    def test_impairment_changes_unsupported(self):
        with pytest.raises(NotImplementedError):
            ChannelModel().set_impairment(None, PERFECT)


class TestImpairedChannel:
    def test_perfect_default_never_alters(self):
        ch = ImpairedChannel()
        for _ in range(100):
            assert ch.transmit(1, 2) == (0.0,)
        assert ch.counters()["transmissions"] == 100
        assert ch.counters()["dropped"] == 0

    def test_deterministic_per_seed(self):
        spec = Impairment(drop_prob=0.3, dup_prob=0.2, jitter=5.0)
        a = ImpairedChannel(default=spec, seed=42)
        b = ImpairedChannel(default=spec, seed=42)
        fates_a = [a.transmit(1, 2) for _ in range(200)]
        fates_b = [b.transmit(1, 2) for _ in range(200)]
        assert fates_a == fates_b
        assert a.counters() == b.counters()

    def test_different_seeds_differ(self):
        spec = Impairment(drop_prob=0.5)
        a = ImpairedChannel(default=spec, seed=1)
        b = ImpairedChannel(default=spec, seed=2)
        assert [a.transmit(1, 2) for _ in range(100)] != [
            b.transmit(1, 2) for _ in range(100)
        ]

    def test_per_link_streams_are_independent(self):
        # Consuming one link's stream must not perturb another's.
        spec = Impairment(drop_prob=0.5)
        a = ImpairedChannel(default=spec, seed=7)
        b = ImpairedChannel(default=spec, seed=7)
        for _ in range(50):
            a.transmit(1, 2)  # burn link (1,2) on one channel only
        assert [a.transmit(3, 4) for _ in range(100)] == [
            b.transmit(3, 4) for _ in range(100)
        ]

    def test_perfect_links_consume_no_randomness(self):
        # A perfect-spec transmission must not advance the link's RNG, so
        # interleaving perfect periods leaves later decisions unchanged.
        lossy = Impairment(drop_prob=0.5)
        a = ImpairedChannel(default=lossy, seed=3)
        b = ImpairedChannel(default=lossy, seed=3)
        b.set_impairment((1, 2), PERFECT)
        for _ in range(50):
            b.transmit(1, 2)
        b.set_impairment((1, 2), lossy)
        assert [a.transmit(1, 2) for _ in range(100)] == [
            b.transmit(1, 2) for _ in range(100)
        ]

    def test_direction_shares_one_stream(self):
        # Both directions of a link share the canonical key (and RNG).
        spec = Impairment(drop_prob=0.5)
        a = ImpairedChannel(default=spec, seed=9)
        b = ImpairedChannel(default=spec, seed=9)
        assert [a.transmit(2, 5) for _ in range(50)] == [
            b.transmit(5, 2) for _ in range(50)
        ]

    def test_drop_rate_tracks_probability(self):
        ch = ImpairedChannel(default=Impairment(drop_prob=0.25), seed=0)
        n = 2000
        dropped = sum(1 for _ in range(n) if ch.transmit(1, 2) == ())
        assert dropped == ch.dropped
        assert 0.18 < dropped / n < 0.32

    def test_duplication_returns_two_copies(self):
        ch = ImpairedChannel(default=Impairment(dup_prob=1.0), seed=0)
        fate = ch.transmit(1, 2)
        assert len(fate) == 2
        assert ch.duplicated == 1

    def test_jitter_bounds(self):
        ch = ImpairedChannel(default=Impairment(jitter=3.0), seed=0)
        for _ in range(200):
            (delay,) = ch.transmit(1, 2)
            assert 0.0 <= delay <= 3.0

    def test_burst_state_drops_everything(self):
        # burst_enter=1 enters the burst on the first transmission and
        # burst_exit=0 never leaves: every message is lost.
        ch = ImpairedChannel(
            default=Impairment(burst_enter=1.0, burst_exit=0.0), seed=0
        )
        for _ in range(20):
            assert ch.transmit(1, 2) == ()
        assert ch.burst_dropped == 20
        assert ch.dropped == 20

    def test_override_scopes_to_one_link(self):
        ch = ImpairedChannel(seed=0)
        ch.set_impairment((1, 2), Impairment(drop_prob=1.0))
        assert ch.transmit(1, 2) == ()
        assert ch.transmit(3, 4) == (0.0,)

    def test_default_override(self):
        ch = ImpairedChannel(seed=0)
        ch.set_impairment(None, Impairment(drop_prob=1.0))
        assert ch.transmit(1, 2) == ()

    def test_counters_shape(self):
        ch = ImpairedChannel(default=Impairment(drop_prob=0.5), seed=1)
        for _ in range(10):
            ch.transmit(1, 2)
        counters = ch.counters()
        assert set(counters) == {
            "transmissions",
            "dropped",
            "burst_dropped",
            "duplicated",
        }
        assert counters["transmissions"] == 10
