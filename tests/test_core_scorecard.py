"""Tests for the measured Table 1 (E1's engine)."""

import pytest

from repro.core.design_space import LS_SRC_TERMS, enumerate_design_space
from repro.core.evaluation import sample_flows
from repro.core.scorecard import build_scorecard, render_scorecard, score_design_point
from repro.policy.generators import hierarchical_policies
from tests.helpers import small_hierarchy


@pytest.fixture(scope="module")
def scorecard():
    g = small_hierarchy()
    db = hierarchical_policies(g).policies
    flows = sample_flows(g, 20, seed=2, endpoints="all")
    return build_scorecard(g, db, flows)


class TestScorecard:
    def test_all_eight_points_scored(self, scorecard):
        assert [r.point for r in scorecard] == enumerate_design_space()

    def test_recommended_point_dominates(self, scorecard):
        """The paper's conclusion, measured: LS/Src/PT has full
        availability, no illegal routes, no loops, and source control."""
        by_point = {r.point: r for r in scorecard}
        orwg = by_point[LS_SRC_TERMS]
        assert orwg.availability == 1.0
        assert orwg.illegal_routes == 0
        assert orwg.forwarding_loops == 0
        assert orwg.source_control
        assert all(orwg.availability >= r.availability for r in scorecard)

    def test_paper_verdicts_attached(self, scorecard):
        for row in scorecard:
            assert row.paper_verdict.summary

    def test_rendering_contains_all_rows(self, scorecard):
        text = render_scorecard(scorecard)
        for row in scorecard:
            assert row.point.label in text
        assert "Table 1" in text

    def test_rows_have_positive_control_traffic(self, scorecard):
        for row in scorecard:
            assert row.messages > 0
            assert row.bytes > 0


def test_score_single_point():
    g = small_hierarchy()
    db = hierarchical_policies(g).policies
    flows = sample_flows(g, 10, seed=1, endpoints="all")
    row = score_design_point(LS_SRC_TERMS, g, db, flows)
    assert row.protocol == "orwg"
    assert row.max_rib > 0
