"""Tests for the Figure-1 topology generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.ad import ADKind, Level, LinkKind
from repro.adgraph.generator import TopologyConfig, generate_internet, scaled_config


class TestConfigValidation:
    def test_rejects_zero_backbones(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_backbones=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            TopologyConfig(lateral_prob=1.5)
        with pytest.raises(ValueError):
            TopologyConfig(bypass_prob=-0.1)

    def test_expected_size(self):
        cfg = TopologyConfig(
            num_backbones=2, regionals_per_backbone=3, campuses_per_parent=4
        )
        assert cfg.expected_size() == 2 + 6 + 24


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate_internet(TopologyConfig(seed=11))
        b = generate_internet(TopologyConfig(seed=11))
        assert a.ad_ids() == b.ad_ids()
        assert [ln.key for ln in a.links()] == [ln.key for ln in b.links()]
        assert [ln.metrics for ln in a.links()] == [ln.metrics for ln in b.links()]

    def test_different_seeds_differ(self):
        a = generate_internet(TopologyConfig(seed=1, lateral_prob=0.5))
        b = generate_internet(TopologyConfig(seed=2, lateral_prob=0.5))
        assert [ln.key for ln in a.links()] != [ln.key for ln in b.links()]

    def test_always_connected(self):
        for seed in range(10):
            g = generate_internet(TopologyConfig(seed=seed))
            assert g.is_connected(), f"seed {seed} produced a partition"

    def test_level_composition(self):
        cfg = TopologyConfig(
            num_backbones=2, regionals_per_backbone=3, campuses_per_parent=2, seed=0
        )
        g = generate_internet(cfg)
        counts = g.level_counts()
        assert counts[Level.BACKBONE] == 2
        assert counts[Level.REGIONAL] == 6
        assert counts[Level.CAMPUS] == 12

    def test_metro_level_optional(self):
        g = generate_internet(TopologyConfig(metros_per_regional=2, seed=0))
        assert g.level_counts()[Level.METRO] == 2 * 3 * 2
        g2 = generate_internet(TopologyConfig(metros_per_regional=0, seed=0))
        assert g2.level_counts()[Level.METRO] == 0

    def test_backbones_fully_meshed(self):
        g = generate_internet(TopologyConfig(num_backbones=3, seed=0))
        bbs = [a.ad_id for a in g.ads_by_level(Level.BACKBONE)]
        for i, a in enumerate(bbs):
            for b in bbs[i + 1:]:
                assert g.has_link(a, b)
                assert g.link(a, b).kind is LinkKind.LATERAL

    def test_bypass_links_touch_backbone_and_campus(self):
        g = generate_internet(TopologyConfig(bypass_prob=0.8, seed=3))
        bypasses = [ln for ln in g.links() if ln.kind is LinkKind.BYPASS]
        assert bypasses, "high bypass probability produced no bypass links"
        for link in bypasses:
            levels = {g.ad(link.a).level, g.ad(link.b).level}
            assert levels == {Level.BACKBONE, Level.CAMPUS}

    def test_stub_campuses_have_single_link(self):
        g = generate_internet(TopologyConfig(seed=5))
        for ad in g.ads_by_kind(ADKind.STUB):
            assert g.degree(ad.ad_id) == 1, "stub ADs must be single-homed"

    def test_multihomed_campuses_have_multiple_links(self):
        g = generate_internet(TopologyConfig(multihome_prob=0.9, seed=5))
        multis = g.ads_by_kind(ADKind.MULTIHOMED)
        assert multis
        for ad in multis:
            assert g.degree(ad.ad_id) >= 2

    def test_zero_exception_probs_give_pure_hierarchy(self):
        cfg = TopologyConfig(
            num_backbones=1,
            lateral_prob=0.0,
            bypass_prob=0.0,
            multihome_prob=0.0,
            seed=0,
        )
        g = generate_internet(cfg)
        kinds = g.link_kind_counts()
        assert kinds[LinkKind.LATERAL] == 0
        assert kinds[LinkKind.BYPASS] == 0
        # A pure hierarchy with one backbone is a tree.
        assert g.num_links == g.num_ads - 1

    def test_transit_levels_are_transit_capable(self):
        g = generate_internet(TopologyConfig(seed=9, hybrid_fraction=0.5))
        for ad in g.ads():
            if ad.level in (Level.BACKBONE, Level.REGIONAL, Level.METRO):
                assert ad.kind.may_transit

    def test_metrics_attached_to_every_link(self):
        g = generate_internet(TopologyConfig(seed=2))
        for link in g.links():
            assert link.metrics["delay"] > 0
            assert link.metrics["cost"] > 0


class TestScaledConfig:
    @pytest.mark.parametrize("target", [25, 60, 120, 300])
    def test_hits_target_roughly(self, target):
        g = generate_internet(scaled_config(target, seed=0))
        assert 0.5 * target <= g.num_ads <= 2.0 * target

    def test_rejects_tiny_targets(self):
        with pytest.raises(ValueError):
            scaled_config(3)

    def test_overrides_forwarded(self):
        cfg = scaled_config(50, seed=1, lateral_prob=0.0)
        assert cfg.lateral_prob == 0.0


@settings(max_examples=20, deadline=None)
@given(
    backbones=st.integers(1, 3),
    regionals=st.integers(1, 4),
    campuses=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_generator_invariants(backbones, regionals, campuses, seed):
    """Property: any config yields a connected internet whose stubs never
    carry transit and whose hierarchy levels are consistent."""
    cfg = TopologyConfig(
        num_backbones=backbones,
        regionals_per_backbone=regionals,
        campuses_per_parent=campuses,
        seed=seed,
    )
    g = generate_internet(cfg)
    assert g.is_connected()
    assert g.num_ads == cfg.expected_size()
    for ad in g.ads_by_kind(ADKind.STUB):
        assert g.degree(ad.ad_id) == 1
