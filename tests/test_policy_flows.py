"""Tests for flow specs, QOS and UCI classes."""

import pytest

from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.uci import UCI


class TestFlowSpec:
    def test_defaults(self):
        f = FlowSpec(1, 2)
        assert f.qos is QOS.DEFAULT
        assert f.uci is UCI.DEFAULT
        assert f.hour == 12

    def test_invalid_hour(self):
        with pytest.raises(ValueError):
            FlowSpec(1, 2, hour=24)

    def test_reversed(self):
        f = FlowSpec(1, 2, qos=QOS.LOW_COST, hour=3)
        r = f.reversed()
        assert (r.src, r.dst) == (2, 1)
        assert r.qos is QOS.LOW_COST and r.hour == 3

    def test_hashable_and_equal(self):
        assert FlowSpec(1, 2) == FlowSpec(1, 2)
        assert len({FlowSpec(1, 2), FlowSpec(1, 2)}) == 1
        assert FlowSpec(1, 2) != FlowSpec(1, 2, hour=3)

    def test_traffic_class(self):
        f = FlowSpec(1, 2, qos=QOS.LOW_DELAY, uci=UCI.RESEARCH)
        assert f.traffic_class == (QOS.LOW_DELAY, UCI.RESEARCH)

    def test_endpoints(self):
        assert FlowSpec(4, 9).endpoints == (4, 9)


class TestQOS:
    def test_metric_binding(self):
        assert QOS.DEFAULT.metric == "delay"
        assert QOS.LOW_DELAY.metric == "delay"
        assert QOS.LOW_COST.metric == "cost"
        assert QOS.HIGH_BANDWIDTH.metric == "bandwidth"

    def test_composition(self):
        assert QOS.HIGH_BANDWIDTH.is_bottleneck
        assert not QOS.DEFAULT.is_bottleneck

    def test_all_classes(self):
        assert len(QOS.all_classes()) == 4
        assert QOS.HIGH_BANDWIDTH not in QOS.additive_classes()
        assert len(QOS.additive_classes()) == 3


class TestUCI:
    def test_all_classes(self):
        classes = UCI.all_classes()
        assert UCI.DEFAULT in classes
        assert len(classes) == 4
