"""Tests for the bounded ingress queue: config validation, service
discipline, overflow policies, crash/restore (NVRAM) semantics, and the
interaction with retransmission hardening."""

from dataclasses import dataclass
from typing import List, Tuple

import pytest

from repro.adgraph.ad import ADId
from repro.simul.ingress import OVERFLOW_POLICIES, IngressConfig
from repro.simul.messages import Message
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode
from repro.protocols.registry import make_protocol
from tests.helpers import line_graph, open_db


@dataclass(frozen=True)
class Ping(Message):
    payload: int = 0

    def size_bytes(self) -> int:
        return super().size_bytes() + 4


class Recorder(ProtocolNode):
    def __init__(self, ad_id: ADId):
        super().__init__(ad_id)
        self.heard: List[Tuple[ADId, Message, float]] = []

    def on_message(self, sender, msg):
        self.heard.append((sender, msg, self.now))

    def on_link_change(self, link, up):
        pass


def recorder_net(n=3):
    graph = line_graph(n)
    net = SimNetwork(graph)
    net.add_nodes(Recorder(i) for i in graph.ad_ids())
    return net


class TestIngressConfig:
    def test_default_is_unbounded(self):
        cfg = IngressConfig()
        assert cfg.capacity is None
        assert not cfg.bounded

    def test_zero_capacity_is_legal(self):
        # Only the in-service slot: every arrival while busy overflows.
        assert IngressConfig(capacity=0).bounded

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            IngressConfig(capacity=-1)

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError, match="service"):
            IngressConfig(capacity=4, service_time=-0.1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            IngressConfig(capacity=4, policy="red")
        for policy in OVERFLOW_POLICIES:
            IngressConfig(capacity=4, policy=policy)

    def test_backpressure_knobs_validated(self):
        with pytest.raises(ValueError, match="retry"):
            IngressConfig(capacity=4, retry_delay=0.0)
        with pytest.raises(ValueError, match="redeliveries"):
            IngressConfig(capacity=4, max_redeliveries=-1)


class TestUnboundedPath:
    def test_unbounded_config_keeps_instant_delivery(self):
        # capacity=None attaches the model but leaves the legacy path:
        # delivery at exactly the link delay, no service stage.
        plain = recorder_net()
        plain.send(0, 1, Ping(7))
        plain.run()
        queued = recorder_net()
        queued.set_ingress(IngressConfig())
        queued.send(0, 1, Ping(7))
        queued.run()
        assert [(s, m.payload, t) for s, m, t in plain.node(1).heard] == [
            (s, m.payload, t) for s, m, t in queued.node(1).heard
        ]
        assert queued.metrics.queue_dropped == 0
        assert queued.ingress.served == 0

    def test_detach_restores_legacy_path(self):
        net = recorder_net()
        net.set_ingress(IngressConfig(capacity=4, service_time=0.5))
        net.set_ingress(None)
        net.send(0, 1, Ping())
        net.run()
        (_, _, t), = net.node(1).heard
        assert t == net.graph.link(0, 1).metric("delay")


class TestBoundedService:
    def test_service_time_delays_delivery(self):
        net = recorder_net()
        net.set_ingress(IngressConfig(capacity=4, service_time=0.5))
        net.send(0, 1, Ping())
        net.run()
        (_, _, t), = net.node(1).heard
        assert t == net.graph.link(0, 1).metric("delay") + 0.5

    def test_fifo_single_server_discipline(self):
        net = recorder_net()
        net.set_ingress(IngressConfig(capacity=4, service_time=0.5))
        for k in range(3):
            net.send(0, 1, Ping(k))
        net.run()
        heard = net.node(1).heard
        assert [m.payload for _, m, _ in heard] == [0, 1, 2]
        # One server: messages finish 0.5 apart even though they all
        # arrived together.
        times = [t for _, _, t in heard]
        assert times == [1.5, 2.0, 2.5]
        q = net.ingress.queue_of(1)
        assert q.served == 3
        assert q.peak_depth == 3  # one in service + two waiting

    def test_counters_rollup(self):
        net = recorder_net()
        net.set_ingress(IngressConfig(capacity=4, service_time=0.5))
        for k in range(3):
            net.send(0, 1, Ping(k))
        net.run()
        counters = net.ingress.counters(elapsed=net.sim.now, n_nodes=3)
        assert counters["capacity"] == 4
        assert counters["served"] == 3
        assert counters["dropped"] == 0
        assert counters["peak_depth"] == 3
        assert counters["duty_cycle"] > 0


class TestTailDrop:
    def test_overflow_drops_and_counts(self):
        net = recorder_net()
        net.set_ingress(IngressConfig(capacity=1, service_time=10.0))
        for k in range(4):
            net.send(0, 1, Ping(k))
        net.run()
        # One in service, one waiting; the other two overflowed.
        assert [m.payload for _, m, _ in net.node(1).heard] == [0, 1]
        assert net.ingress.dropped == 2
        assert net.metrics.queue_dropped == 2


class TestBackpressure:
    def test_deferred_arrival_is_redelivered(self):
        net = recorder_net()
        net.set_ingress(
            IngressConfig(
                capacity=0, service_time=0.5,
                policy="backpressure", retry_delay=2.0,
            )
        )
        net.send(0, 1, Ping(0))
        net.send(0, 1, Ping(1))
        net.run()
        # The second arrival found the queue full, waited 2.0, and got in.
        assert [m.payload for _, m, _ in net.node(1).heard] == [0, 1]
        assert net.ingress.deferred == 1
        assert net.metrics.deferred == 1
        assert net.ingress.dropped == 0

    def test_redeliveries_are_bounded(self):
        # A persistently full queue cannot recirculate a message forever:
        # after max_redeliveries attempts it drops.
        net = recorder_net()
        net.set_ingress(
            IngressConfig(
                capacity=0, service_time=1000.0,
                policy="backpressure", retry_delay=1.0, max_redeliveries=2,
            )
        )
        net.send(0, 1, Ping(0))
        net.send(0, 1, Ping(1))
        net.run()
        assert net.ingress.queue_of(1).deferred == 2
        assert net.ingress.queue_of(1).dropped == 1
        assert [m.payload for _, m, _ in net.node(1).heard] == [0]


class TestCrashSemantics:
    """NVRAM model: crash freezes the queue; what restore brings back
    depends on whether the process kept its state."""

    def _loaded(self):
        net = recorder_net()
        net.set_ingress(IngressConfig(capacity=8, service_time=5.0))
        for k in range(3):
            net.send(0, 1, Ping(k))
        net.run(until=1.5)  # deliveries enqueue; nothing served yet
        assert net.ingress.queue_of(1).depth == 3
        return net

    def test_crash_freezes_service_and_retained_restore_resumes(self):
        net = self._loaded()
        net.crash_node(1)
        net.run(until=100.0)
        assert net.node(1).heard == []  # frozen, not serving
        net.restore_node(1)
        net.run()
        # NVRAM: the queue survived the outage intact and in order.
        assert [m.payload for _, m, _ in net.node(1).heard] == [0, 1, 2]
        assert net.ingress.dropped == 0

    def test_state_losing_restart_flushes_the_queue(self):
        net = self._loaded()
        net.crash_node(1)
        lost = net.flush_ingress(1)
        assert lost == 3
        net.restore_node(1)
        net.run()
        assert net.node(1).heard == []
        assert net.metrics.queue_dropped == 3

    def test_delivery_to_crashed_node_is_dropped(self):
        net = recorder_net()
        net.set_ingress(IngressConfig(capacity=8, service_time=0.5))
        net.crash_node(1)
        net.send(0, 1, Ping())
        net.run()
        net.restore_node(1)
        net.run()
        assert net.node(1).heard == []
        assert net.metrics.dropped == 1


class TestProtocolCrashIntegration:
    def _built(self):
        g = line_graph(3)
        proto = make_protocol("egp", g, open_db(g))
        network = proto.build()
        network.set_ingress(IngressConfig(capacity=16, service_time=2.0))
        proto.converge()
        return proto, network

    def _park_update(self, network):
        """Leave one unserviced update in AD 1's ingress queue."""
        from repro.protocols.egp import NRUpdate

        t0 = network.sim.now
        network.send(0, 1, NRUpdate((0,)))
        network.run(until=t0 + 1.5)  # delivered (delay 1), service needs 2
        assert network.ingress.queue_of(1).depth == 1

    def test_state_losing_crash_flushes_pending_ingress(self):
        proto, network = self._built()
        self._park_update(network)
        proto.crash_node(1, retain_state=False)
        assert network.metrics.queue_dropped == 1
        proto.restore_node(1)
        network.run()
        assert network.ingress.queue_of(1).depth == 0

    def test_state_retaining_crash_preserves_pending_ingress(self):
        proto, network = self._built()
        self._park_update(network)
        served_before = network.ingress.queue_of(1).served
        proto.crash_node(1)  # retain_state=True: NVRAM
        assert network.ingress.queue_of(1).depth == 1
        proto.restore_node(1)
        network.run()
        assert network.metrics.queue_dropped == 0
        assert network.ingress.queue_of(1).served > served_before


class TestRetransmitInteraction:
    def test_queue_drop_consumes_a_bounded_retry(self):
        # The adversarial composition: retransmission hardening keeps
        # resending what a full 1-slot queue keeps dropping.  Retries are
        # bounded, so the storm terminates instead of ping-ponging -- a
        # dropped message costs a retry, it does not earn a free one.
        g = line_graph(2)
        proto = make_protocol("egp", g, open_db(g), hardening="retransmit")
        network = proto.build()
        network.set_ingress(IngressConfig(capacity=1, service_time=100.0))
        result = proto.converge()
        assert result.quiesced
        assert network.metrics.queue_dropped > 0
        # Every retransmission chain ended: acked or given up for lost.
        for node in network.nodes.values():
            assert node._unacked == {}
