"""Tests for the fault-plan DSL and its seeded generators."""

import pytest

from repro.adgraph.ad import LinkKind
from repro.adgraph.failures import FailurePlan, LinkFailure, safe_failure_candidates
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.faults.channel import PERFECT, Impairment
from repro.faults.plan import (
    FaultPlan,
    ImpairmentChange,
    LinkFault,
    NodeFault,
    ad_crash_plan,
    crash_candidates,
    link_flap_plan,
    churn_storm_plan,
    lossy_period_plan,
    merge_plans,
)
from tests.helpers import line_graph, mk_graph


@pytest.fixture(scope="module")
def internet():
    return generate_internet(TopologyConfig(seed=1, lateral_prob=0.6))


class TestFaultPlan:
    def test_events_must_be_time_ordered(self):
        with pytest.raises(ValueError):
            FaultPlan((LinkFault(10, 1, 2), NodeFault(5, 3)))

    def test_iteration_len_horizon(self):
        plan = FaultPlan((LinkFault(1, 1, 2), NodeFault(7, 3, up=True)))
        assert len(plan) == 2
        assert [e.time for e in plan] == [1, 7]
        assert plan.horizon == 7

    def test_empty_plan(self):
        plan = FaultPlan(())
        assert len(plan) == 0
        assert plan.horizon == 0.0

    def test_from_failure_plan(self):
        legacy = FailurePlan(
            (LinkFailure(5, 1, 2, up=False), LinkFailure(10, 1, 2, up=True))
        )
        plan = FaultPlan.from_failure_plan(legacy)
        assert all(isinstance(e, LinkFault) for e in plan)
        assert [(e.time, e.a, e.b, e.up) for e in plan] == [
            (5, 1, 2, False),
            (10, 1, 2, True),
        ]

    def test_merge_orders_by_time(self):
        a = FaultPlan((LinkFault(5, 1, 2), LinkFault(20, 1, 2, up=True)))
        b = FaultPlan((NodeFault(10, 3),))
        merged = merge_plans(a, b)
        assert [e.time for e in merged] == [5, 10, 20]

    def test_merge_is_stable_for_equal_times(self):
        a = FaultPlan((LinkFault(5, 1, 2),))
        b = FaultPlan((NodeFault(5, 3),))
        merged = merge_plans(a, b)
        assert isinstance(merged.events[0], LinkFault)
        assert isinstance(merged.events[1], NodeFault)


class TestLinkFlapPlan:
    def test_each_flap_is_down_then_up(self, internet):
        plan = link_flap_plan(internet, flaps=3, seed=2)
        events = list(plan)
        assert len(events) == 6
        for down, up in zip(events[0::2], events[1::2]):
            assert (down.a, down.b) == (up.a, up.b)
            assert not down.up and up.up
            assert up.time == down.time + 200.0  # half the default spacing

    def test_flapped_links_are_safe(self, internet):
        plan = link_flap_plan(internet, flaps=3, seed=2)
        safe = set(safe_failure_candidates(internet))
        for ev in plan:
            assert (ev.a, ev.b) in safe

    def test_down_for_override(self, internet):
        plan = link_flap_plan(internet, flaps=1, start_time=50, down_for=30, seed=0)
        assert [e.time for e in plan] == [50, 80]

    def test_deterministic(self, internet):
        assert list(link_flap_plan(internet, flaps=2, seed=5)) == list(
            link_flap_plan(internet, flaps=2, seed=5)
        )

    def test_raises_when_candidates_run_out(self):
        with pytest.raises(ValueError, match="safe candidate links"):
            link_flap_plan(line_graph(4), flaps=1)


class TestCrashPlans:
    def test_articulation_points_excluded(self):
        # In a line 0-1-2-3 the interior nodes are articulation points.
        g = line_graph(4)
        assert crash_candidates(g) == [0, 3]

    def test_cycle_has_all_candidates(self):
        g = mk_graph([(0, "Rt"), (1, "Rt"), (2, "Rt")], [(0, 1), (1, 2), (0, 2)])
        assert crash_candidates(g) == [0, 1, 2]

    def test_crash_then_restart(self, internet):
        plan = ad_crash_plan(internet, crashes=2, retain_state=True, seed=1)
        events = list(plan)
        assert len(events) == 4
        for down, up in zip(events[0::2], events[1::2]):
            assert down.ad == up.ad
            assert not down.up and up.up
            assert down.retain_state and up.retain_state
        assert all(e.ad in crash_candidates(internet) for e in events)

    def test_state_loss_flag(self, internet):
        plan = ad_crash_plan(internet, crashes=1, retain_state=False, seed=0)
        assert all(not e.retain_state for e in plan)

    def test_raises_when_not_enough_safe_ads(self):
        g = line_graph(3)  # only the two endpoints are crash-safe
        with pytest.raises(ValueError, match="crash-safe ADs"):
            ad_crash_plan(g, crashes=3)


class TestLossyPeriodPlan:
    def test_window_then_restore(self):
        spec = Impairment(drop_prob=0.5)
        plan = lossy_period_plan(spec, start_time=100, duration=50, link=(1, 2))
        first, second = list(plan)
        assert isinstance(first, ImpairmentChange)
        assert first.time == 100 and first.spec == spec and first.link == (1, 2)
        assert second.time == 150 and second.spec == PERFECT and second.link == (1, 2)

    def test_default_scope_is_all_links(self):
        plan = lossy_period_plan(Impairment(drop_prob=0.1))
        assert all(e.link is None for e in plan)


class TestChurnStormPlan:
    def test_phase_locked_down_up_cycles(self, internet):
        plan = churn_storm_plan(
            internet, hz=0.1, links=1, start_time=10.0, duration=30.0, seed=3
        )
        # Period 10: downs at 10/20/30, the up-leg half a period later.
        assert [e.time for e in plan] == [10, 15, 20, 25, 30, 35]
        assert [e.up for e in plan] == [False, True] * 3
        assert len({(e.a, e.b) for e in plan}) == 1

    def test_links_flap_concurrently(self, internet):
        plan = churn_storm_plan(internet, hz=0.05, links=3, seed=2)
        times = [e.time for e in plan]
        assert times == sorted(times)
        flapped = {(e.a, e.b) for e in plan}
        assert len(flapped) == 3
        # Unlike link_flap_plan, every chosen link is down at once at the
        # start of each period.
        first = min(times)
        assert sum(1 for e in plan if e.time == first and not e.up) == 3

    def test_prefers_lateral_and_bypass_links(self, internet):
        plan = churn_storm_plan(internet, hz=0.05, links=3, seed=2)
        kinds = {
            internet.link(e.a, e.b).kind for e in plan
        }
        assert kinds <= {LinkKind.LATERAL, LinkKind.BYPASS}

    def test_never_flaps_a_bridge(self, internet):
        plan = churn_storm_plan(internet, hz=0.05, links=4, seed=1)
        safe = set(safe_failure_candidates(internet))
        assert {(e.a, e.b) for e in plan} <= safe

    def test_seeded_determinism(self, internet):
        a = churn_storm_plan(internet, hz=0.05, links=3, seed=9)
        b = churn_storm_plan(internet, hz=0.05, links=3, seed=9)
        assert list(a) == list(b)

    def test_parameter_validation(self, internet):
        with pytest.raises(ValueError, match="frequency"):
            churn_storm_plan(internet, hz=0.0)
        with pytest.raises(ValueError, match="duration"):
            churn_storm_plan(internet, duration=0.0)
        with pytest.raises(ValueError, match="candidate"):
            churn_storm_plan(line_graph(4), links=2)  # all links are bridges
