"""Memoized per-hop policy decisions: same outcomes, fewer engine calls."""

import pytest

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.forwarding.dataplane import (
    HopDecisionCache,
    forward_flow,
    run_traffic,
)
from repro.policy.generators import restricted_policies
from repro.protocols.registry import make_protocol
from repro.traffic.workload import WorkloadSpec, zipf_workload


@pytest.fixture(scope="module")
def setting():
    graph = generate_internet(TopologyConfig(seed=42))
    policies = restricted_policies(graph, 0.4, seed=42).policies
    protocol = make_protocol("ls-hbh", graph, policies)
    protocol.converge()
    flows = zipf_workload(
        graph, WorkloadSpec(flows=1, pairs=128, seed=4)
    ).classes
    return protocol, flows


def test_outcomes_identical(setting):
    protocol, flows = setting
    plain = run_traffic(protocol, flows)
    memo = run_traffic(protocol, flows, memoize=True)
    assert plain.outcomes == memo.outcomes


def test_cache_collapses_repeats(setting):
    protocol, flows = setting
    cache = HopDecisionCache(protocol.policies.transit_permits)
    for flow in flows:
        forward_flow(protocol, flow, cache=cache)
    cold_misses = cache.misses
    assert cold_misses > 0
    # Re-forwarding the same sample is pure hits: the memo key is the
    # full (transit, prev, next, flow) question, so the second pass asks
    # exactly the first pass's questions again and misses none.
    for flow in flows:
        forward_flow(protocol, flow, cache=cache)
    assert cache.misses == cold_misses
    assert cache.hits == cold_misses


def test_memo_off_without_policy(setting):
    protocol, flows = setting
    report = run_traffic(protocol, flows, enforce_policy=False, memoize=True)
    baseline = run_traffic(protocol, flows, enforce_policy=False)
    assert report.outcomes == baseline.outcomes
