"""Tests for the packet header size models (E6's accounting)."""

import pytest

from repro.forwarding.headers import (
    amortized_handle_bytes,
    handle_header_bytes,
    hop_by_hop_header_bytes,
    setup_header_bytes,
    source_route_header_bytes,
)


class TestHeaderModels:
    def test_source_route_grows_with_route(self):
        assert source_route_header_bytes(8) > source_route_header_bytes(3)

    def test_handle_smaller_than_any_multi_hop_source_route(self):
        assert handle_header_bytes() < source_route_header_bytes(3)

    def test_handle_slightly_bigger_than_plain(self):
        assert handle_header_bytes() == hop_by_hop_header_bytes() + 4

    def test_setup_carries_route_and_citations(self):
        short = setup_header_bytes(3, 1)
        long = setup_header_bytes(8, 6)
        assert long > short
        assert setup_header_bytes(3, 2) == setup_header_bytes(3, 1) + 4

    def test_invalid_route_lengths(self):
        with pytest.raises(ValueError):
            source_route_header_bytes(0)
        with pytest.raises(ValueError):
            setup_header_bytes(0, 0)


class TestAmortisation:
    def test_amortised_cost_decreases_with_stream_length(self):
        few = amortized_handle_bytes(6, 4, packets=2)
        many = amortized_handle_bytes(6, 4, packets=100)
        assert many < few

    def test_amortised_beats_per_packet_source_route_for_long_streams(self):
        """Section 5.4.1's argument: for long-lived routes, setup+handle
        beats carrying the source route in every packet."""
        route_len, terms = 6, 4
        per_packet = source_route_header_bytes(route_len)
        amortised = amortized_handle_bytes(route_len, terms, packets=50)
        assert amortised < per_packet

    def test_single_packet_is_worse(self):
        """...but a one-packet exchange pays more: the crossover exists."""
        route_len, terms = 6, 4
        per_packet = source_route_header_bytes(route_len)
        amortised = amortized_handle_bytes(route_len, terms, packets=1)
        assert amortised > per_packet

    def test_rejects_zero_packets(self):
        with pytest.raises(ValueError):
            amortized_handle_bytes(3, 1, packets=0)
