"""Tests for AD crash/restart: network silencing, node lifecycle, and
protocol-level recovery with and without retained state."""

import pytest

from repro.faults.plan import FaultPlan, ImpairmentChange, LinkFault, NodeFault
from repro.faults.channel import Impairment
from repro.policy.flows import FlowSpec
from repro.protocols.flooding import LSNode
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from tests.helpers import mk_graph, open_db


def ring4():
    """A 4-cycle of transit ADs: every node is crash-safe."""
    return mk_graph(
        [(0, "Rt"), (1, "Rt"), (2, "Rt"), (3, "Rt")],
        [(0, 1), (1, 2), (2, 3), (0, 3)],
    )


def converged_proto():
    g = ring4()
    proto = LinkStateHopByHopProtocol(g, open_db(g))
    proto.converge()
    return proto


class TestNetworkCrash:
    def test_crashed_node_drops_deliveries(self):
        proto = converged_proto()
        network = proto.network
        dropped_before = network.metrics.dropped
        network.crash_node(1)
        network.send(0, 1, _probe_msg())
        network.run()
        assert network.metrics.dropped == dropped_before + 1

    def test_crash_requires_node(self):
        proto = converged_proto()
        with pytest.raises(ValueError):
            proto.network.crash_node(99)

    def test_double_crash_rejected(self):
        proto = converged_proto()
        proto.network.crash_node(1)
        with pytest.raises(ValueError):
            proto.network.crash_node(1)

    def test_restore_requires_crashed(self):
        proto = converged_proto()
        with pytest.raises(ValueError):
            proto.network.restore_node(1)

    def test_restore_rejects_wrong_replacement(self):
        proto = converged_proto()
        network = proto.network
        network.crash_node(1)
        wrong = network.nodes[2]
        with pytest.raises(ValueError):
            network.restore_node(1, wrong)

    def test_crashed_endpoint_not_notified(self):
        proto = converged_proto()
        network = proto.network
        network.crash_node(1)
        node = network.nodes[1]
        seq_before = node._seq
        # Link-status churn around the crashed node must not wake it.
        network.set_link_status(0, 1, False)
        network.set_link_status(0, 1, True)
        network.run()
        assert node._seq == seq_before


def _probe_msg():
    from repro.protocols.flooding import ExchangeAck

    return ExchangeAck(token=1)


class TestRetiredNodes:
    def test_retired_node_timers_are_inert(self):
        proto = converged_proto()
        node = proto.network.nodes[1]
        fired = []
        node.schedule(5.0, lambda: fired.append(True))
        node.retire()
        proto.network.run()
        assert fired == []

    def test_live_node_timers_fire(self):
        proto = converged_proto()
        node = proto.network.nodes[1]
        fired = []
        node.schedule(5.0, lambda: fired.append(True))
        proto.network.run()
        assert fired == [True]


class TestCrashCancelsTimers:
    def test_stateless_crash_cancels_pending_timers(self):
        # The process is gone: retransmit/refresh timers it armed must
        # die with it, not fire into the dead node during the outage.
        proto = converged_proto()
        fired = []
        proto.network.nodes[1].schedule(5.0, lambda: fired.append(True))
        proto.crash_node(1, retain_state=False)
        proto.network.run()
        assert fired == []

    def test_timer_stays_dead_across_restart(self):
        proto = converged_proto()
        fired = []
        proto.network.nodes[1].schedule(5.0, lambda: fired.append(True))
        proto.crash_node(1, retain_state=False)
        proto.restore_node(1)
        proto.network.run()
        assert fired == []

    def test_retained_crash_keeps_the_process_timers(self):
        # retain_state models an isolated-but-running process: its own
        # timers still fire (they just cannot reach the network).
        proto = converged_proto()
        fired = []
        proto.network.nodes[1].schedule(5.0, lambda: fired.append(True))
        proto.crash_node(1, retain_state=True)
        proto.network.run()
        assert fired == [True]


class TestProtocolCrashRecovery:
    def test_neighbours_route_around_a_crash(self):
        proto = converged_proto()
        proto.crash_node(1, retain_state=True)
        proto.network.run()
        assert proto.is_crashed(1)
        assert proto.find_route(FlowSpec(0, 2)) == (0, 3, 2)

    def test_retained_restart_recovers(self):
        proto = converged_proto()
        old = proto.network.nodes[1]
        proto.crash_node(1, retain_state=True)
        proto.network.run()
        proto.restore_node(1)
        proto.network.run()
        assert not proto.is_crashed(1)
        assert proto.network.nodes[1] is old  # same process came back
        assert proto.find_route(FlowSpec(0, 2)) == (0, 1, 2)

    def test_state_losing_restart_swaps_in_a_fresh_node(self):
        proto = converged_proto()
        old = proto.network.nodes[1]
        proto.crash_node(1, retain_state=False)
        proto.network.run()
        proto.restore_node(1)
        fresh = proto.network.nodes[1]
        assert fresh is not old
        proto.network.run()
        assert proto.find_route(FlowSpec(0, 2)) == (0, 1, 2)
        # The reborn node relearned every peer's LSA.
        view, _ = fresh.local_view()
        for link in proto.graph.links():
            assert view.link(link.a, link.b).up == link.up

    def test_fresh_node_inherits_sequence_numbers(self):
        # NVRAM model: without it the reborn LSA (seq 1) would lose to
        # the pre-crash LSA (seq >= 1) still cached internet-wide.
        proto = converged_proto()
        old = proto.network.nodes[1]
        assert isinstance(old, LSNode)
        old_seq = old._seq
        proto.crash_node(1, retain_state=False)
        proto.network.run()
        proto.restore_node(1)
        proto.network.run()
        fresh = proto.network.nodes[1]
        assert fresh._seq > old_seq
        # And its neighbours accepted the reborn LSA.
        assert proto.network.nodes[0].lsdb[1].seq == fresh._seq

    def test_double_crash_rejected_at_protocol_level(self):
        proto = converged_proto()
        proto.crash_node(1)
        with pytest.raises(ValueError):
            proto.crash_node(1)

    def test_restore_of_uncrashed_rejected(self):
        proto = converged_proto()
        with pytest.raises(ValueError):
            proto.restore_node(1)


class TestFaultPlanScheduling:
    def test_plan_times_are_relative_to_now(self):
        proto = converged_proto()
        t0 = proto.network.sim.now
        assert t0 > 0  # convergence consumed simulated time
        plan = FaultPlan(
            (
                NodeFault(10.0, 1, up=False, retain_state=True),
                NodeFault(20.0, 1, up=True, retain_state=True),
            )
        )
        proto.schedule_fault_plan(plan)
        proto.network.run(until=t0 + 15.0)
        assert proto.is_crashed(1)
        proto.network.run()
        assert not proto.is_crashed(1)

    def test_link_fault_events_apply(self):
        proto = converged_proto()
        proto.schedule_fault_plan(
            FaultPlan((LinkFault(5.0, 0, 1, up=False),))
        )
        proto.network.run()
        assert not proto.graph.link(0, 1).up

    def test_impairment_change_attaches_channel(self):
        proto = converged_proto()
        assert proto.network.channel is None
        proto.schedule_fault_plan(
            FaultPlan(
                (ImpairmentChange(5.0, Impairment(drop_prob=1.0), (0, 1)),)
            )
        )
        proto.network.run()
        assert proto.network.channel is not None
        assert proto.network.channel.transmit(0, 1) == ()
