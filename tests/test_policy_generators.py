"""Tests for the policy scenario generators."""

import pytest

from repro.adgraph.ad import ADKind, Level
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.policy.flows import FlowSpec
from repro.policy.generators import (
    customer_cone,
    hierarchical_policies,
    open_policies,
    restricted_policies,
    source_class_members,
    source_class_of,
    source_class_policies,
)


@pytest.fixture
def graph():
    return generate_internet(TopologyConfig(seed=4, hybrid_fraction=0.4))


class TestCustomerCone:
    def test_cone_of_regional_includes_campuses(self, hierarchy):
        cone = customer_cone(hierarchy, 1)
        assert cone == {1, 3, 4}

    def test_cone_of_stub_is_itself(self, hierarchy):
        assert customer_cone(hierarchy, 3) == {3}

    def test_cone_of_backbone_covers_hierarchy(self, hierarchy):
        cone = customer_cone(hierarchy, 0)
        # Everything reachable downward through hierarchical links.
        assert cone == {0, 1, 2, 3, 4, 5, 6}

    def test_cone_ignores_lateral_and_bypass(self, hierarchy):
        # 1-2 lateral and 3-0 bypass must not extend cones sideways/upward.
        assert 2 not in customer_cone(hierarchy, 1)
        assert 0 not in customer_cone(hierarchy, 3)


class TestOpenPolicies:
    def test_every_transit_capable_ad_has_open_term(self, graph):
        db = open_policies(graph).policies
        for ad in graph.transit_ads():
            terms = db.terms_of(ad.ad_id)
            assert len(terms) == 1 and terms[0].is_open
        for ad in graph.stub_ads():
            assert db.terms_of(ad.ad_id) == ()


class TestHierarchicalPolicies:
    def test_pure_transit_open(self, graph):
        db = hierarchical_policies(graph).policies
        for ad in graph.ads_by_kind(ADKind.TRANSIT):
            assert any(t.is_open for t in db.terms_of(ad.ad_id))

    def test_hybrid_limited_to_cone(self, graph):
        db = hierarchical_policies(graph).policies
        hybrids = graph.ads_by_kind(ADKind.HYBRID)
        assert hybrids, "fixture must contain hybrid ADs"
        for ad in hybrids:
            cone = customer_cone(graph, ad.ad_id)
            outside = next(
                a for a in graph.ad_ids() if a not in cone
            )
            inside_flow = FlowSpec(src=min(cone), dst=outside)
            outside_flow = FlowSpec(src=outside, dst=outside)
            nbrs = graph.neighbors(ad.ad_id, include_down=True)
            if len(nbrs) < 2:
                continue
            prev, nxt = nbrs[0], nbrs[1]
            assert db.transit_permits(ad.ad_id, inside_flow, prev, nxt)
            assert not db.transit_permits(ad.ad_id, outside_flow, prev, nxt)

    def test_stubs_have_no_terms(self, graph):
        db = hierarchical_policies(graph).policies
        for ad in graph.stub_ads():
            assert db.terms_of(ad.ad_id) == ()


class TestRestrictedPolicies:
    def test_zero_restrictiveness_equals_hierarchical(self, graph):
        base = hierarchical_policies(graph).policies
        restricted = restricted_policies(graph, 0.0, seed=1).policies
        assert base.num_terms == restricted.num_terms
        for b, r in zip(base.all_terms(), restricted.all_terms()):
            assert b.owner == r.owner
            assert b.is_open == r.is_open

    def test_restrictions_narrow_terms(self, graph):
        base = hierarchical_policies(graph).policies
        tight = restricted_policies(graph, 1.0, seed=1).policies
        open_before = sum(t.is_open for t in base.all_terms())
        open_after = sum(t.is_open for t in tight.all_terms())
        assert open_after < open_before

    def test_invalid_restrictiveness(self, graph):
        with pytest.raises(ValueError):
            restricted_policies(graph, 1.5)

    def test_deterministic(self, graph):
        a = restricted_policies(graph, 0.5, seed=3).policies
        b = restricted_policies(graph, 0.5, seed=3).policies
        assert a.all_terms() == b.all_terms()


class TestSourceClassPolicies:
    def test_class_partition(self, graph):
        n = 4
        members = [source_class_members(graph, n, c) for c in range(n)]
        all_ids = set().union(*members)
        assert all_ids == set(graph.ad_ids())
        for i in range(n):
            for j in range(i + 1, n):
                assert not (members[i] & members[j])

    def test_class_of_is_stable(self):
        assert source_class_of(10, 4) == source_class_of(10, 4) == 2

    def test_term_count_scales_with_classes(self, graph):
        few = source_class_policies(graph, 2, seed=1).policies
        many = source_class_policies(graph, 8, seed=1).policies
        assert many.num_terms > few.num_terms

    def test_backbones_serve_every_class(self, graph):
        db = source_class_policies(graph, 6, refusal_prob=0.9, seed=2).policies
        for ad in graph.ads_by_level(Level.BACKBONE):
            assert len(db.terms_of(ad.ad_id)) == 6

    def test_invalid_args(self, graph):
        with pytest.raises(ValueError):
            source_class_policies(graph, 0)
        with pytest.raises(ValueError):
            source_class_policies(graph, 2, refusal_prob=2.0)
        with pytest.raises(ValueError):
            source_class_of(1, 0)
