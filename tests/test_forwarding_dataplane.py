"""Tests for the data plane: enforcement, loops, blackholes."""


from repro.forwarding.dataplane import DataPlaneReport, forward_flow, run_traffic
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.orwg import ORWGProtocol
from tests.helpers import diamond_graph, line_graph, open_db


class TestForwardFlow:
    def test_delivery_over_converged_dv(self):
        g = line_graph(4)
        proto = DistanceVectorProtocol(g, open_db(g))
        proto.converge()
        outcome = forward_flow(proto, FlowSpec(0, 3))
        assert outcome.delivered
        assert outcome.path == (0, 1, 2, 3)
        assert outcome.hops == 3

    def test_trivial_flow(self):
        g = line_graph(2)
        proto = DistanceVectorProtocol(g, PolicyDatabase())
        proto.converge()
        outcome = forward_flow(proto, FlowSpec(0, 0))
        assert outcome.delivered and outcome.path == (0,)

    def test_policy_enforcement_drops_at_transit(self):
        """A policy-blind protocol's packet dies at the first transit AD
        whose policy forbids it -- when enforcement is on."""
        g = line_graph(4)
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1))
        db.add_term(PolicyTerm(owner=2, sources=ADSet.of([99])))
        proto = DistanceVectorProtocol(g, db)
        proto.converge()
        enforced = forward_flow(proto, FlowSpec(0, 3), enforce_policy=True)
        assert not enforced.delivered
        assert "AD 2 policy drop" in enforced.reason
        permissive = forward_flow(proto, FlowSpec(0, 3), enforce_policy=False)
        assert permissive.delivered

    def test_blackhole_on_stale_tables(self):
        g = line_graph(3)
        proto = DistanceVectorProtocol(g, PolicyDatabase())
        proto.converge()
        # Fail a link *without* letting the protocol reconverge.
        g.set_link_status(1, 2, up=False)
        outcome = forward_flow(proto, FlowSpec(0, 2))
        assert not outcome.delivered
        assert "no live link" in outcome.reason

    def test_source_route_mode(self):
        g = diamond_graph()
        proto = ORWGProtocol(g, open_db(g))
        proto.converge()
        outcome = forward_flow(proto, FlowSpec(0, 3))
        assert outcome.delivered
        assert outcome.path == (0, 1, 3)

    def test_source_mode_no_route(self):
        g = line_graph(3)
        proto = ORWGProtocol(g, PolicyDatabase())
        proto.converge()
        outcome = forward_flow(proto, FlowSpec(0, 2))
        assert not outcome.delivered
        assert outcome.reason == "no source route"


class TestRunTraffic:
    def test_report_aggregates(self, gen_graph, gen_policies):
        from repro.core.evaluation import sample_flows

        proto = ORWGProtocol(gen_graph, gen_policies)
        proto.converge()
        flows = sample_flows(gen_graph, 25, seed=13)
        report = run_traffic(proto, flows)
        assert report.n_flows == 25
        assert report.delivered + (25 - report.delivered) == 25
        assert 0.0 <= report.delivery_ratio <= 1.0
        assert report.loops == 0
        if report.delivered:
            assert report.mean_hops() > 0

    def test_orwg_delivery_matches_availability(self, gen_graph, gen_restricted):
        """Source-routed traffic is delivered iff a legal route exists:
        data plane and control plane agree."""
        from repro.core.evaluation import legal_route_exists, sample_flows

        proto = ORWGProtocol(gen_graph, gen_restricted)
        proto.converge()
        for flow in sample_flows(gen_graph, 20, seed=14):
            outcome = forward_flow(proto, flow)
            exists = legal_route_exists(gen_graph, gen_restricted, flow)
            assert outcome.delivered == bool(exists)

    def test_empty_report(self):
        report = DataPlaneReport()
        assert report.delivery_ratio == 1.0
        assert report.mean_hops() == 0.0
