"""Tests for source route-selection criteria."""

import pytest

from repro.policy.qos import QOS
from repro.policy.selection import OPEN_SELECTION, RouteSelectionPolicy
from tests.helpers import diamond_graph


class TestValidation:
    def test_avoid_require_overlap_rejected(self):
        with pytest.raises(ValueError):
            RouteSelectionPolicy(
                avoid_ads=frozenset({1}), require_ads=frozenset({1})
            )

    def test_bad_max_hops_rejected(self):
        with pytest.raises(ValueError):
            RouteSelectionPolicy(max_hops=0)

    def test_negative_charge_weight_rejected(self):
        with pytest.raises(ValueError):
            RouteSelectionPolicy(charge_weight=-1.0)


class TestAcceptance:
    def test_open_accepts_anything(self):
        assert OPEN_SELECTION.acceptable([0, 1, 2, 3, 4, 5])
        assert OPEN_SELECTION.permits_node(42)

    def test_avoid(self):
        sel = RouteSelectionPolicy(avoid_ads=frozenset({2}))
        assert not sel.permits_node(2)
        assert sel.permits_node(1)
        assert not sel.acceptable([0, 2, 3])
        assert sel.acceptable([0, 1, 3])

    def test_require(self):
        sel = RouteSelectionPolicy(require_ads=frozenset({1}))
        assert sel.acceptable([0, 1, 3])
        assert not sel.acceptable([0, 2, 3])

    def test_max_hops(self):
        sel = RouteSelectionPolicy(max_hops=2)
        assert sel.acceptable([0, 1, 3])
        assert not sel.acceptable([0, 1, 2, 3])


class TestRanking:
    def test_rank_prefers_cheap_metric(self):
        g = diamond_graph()
        cheap = OPEN_SELECTION.rank_key(g, [0, 1, 3], QOS.DEFAULT)
        costly = OPEN_SELECTION.rank_key(g, [0, 2, 3], QOS.DEFAULT)
        assert cheap < costly

    def test_qos_changes_winner(self):
        g = diamond_graph()
        # Under the cost metric both paths cost 2 -> tie broken by hops
        # then path; under delay the [0,1,3] path wins outright.
        k1 = OPEN_SELECTION.rank_key(g, [0, 1, 3], QOS.LOW_COST)
        k2 = OPEN_SELECTION.rank_key(g, [0, 2, 3], QOS.LOW_COST)
        assert k1[0] == k2[0]
        assert k1 < k2  # path tie-break is deterministic

    def test_charge_weight_included(self):
        g = diamond_graph()
        sel = RouteSelectionPolicy(charge_weight=10.0)
        base = sel.rank_key(g, [0, 1, 3], QOS.DEFAULT, charges=0.0)
        charged = sel.rank_key(g, [0, 1, 3], QOS.DEFAULT, charges=1.0)
        assert charged[0] == base[0] + 10.0
