"""Tests for receiver-side validation: config normalization, the
per-neighbor quarantine state machine, registry plumbing, and end-to-end
containment of a lying AD."""

import pytest

from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.protocols.idrp import IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.registry import make_protocol
from repro.protocols.validation import (
    FEATURES,
    FULL,
    OFF,
    NeighborGuard,
    ValidationConfig,
    validation_from,
)
from tests.helpers import mk_graph, open_db


class TestValidationFrom:
    def test_none_and_empty_mean_off(self):
        assert validation_from(None) == OFF
        assert validation_from("none") == OFF
        assert validation_from("") == OFF

    def test_all_means_full(self):
        assert validation_from("all") == FULL

    def test_config_passes_through(self):
        config = ValidationConfig(seq_guard=True, threshold=5)
        assert validation_from(config) is config

    def test_single_feature_name(self):
        config = validation_from("term_guard")
        assert config.term_guard
        assert config.enabled == ("term_guard",)

    def test_comma_and_plus_separated_lists(self):
        by_comma = validation_from("path_check,quarantine")
        by_plus = validation_from("path_check+quarantine")
        assert by_comma == by_plus
        assert by_comma.enabled == ("path_check", "quarantine")

    def test_iterable_of_names(self):
        config = validation_from(["seq_guard", "metric_guard"])
        assert config.enabled == ("seq_guard", "metric_guard")

    def test_whitespace_stripped(self):
        assert validation_from(" seq_guard , origin_check ").enabled == (
            "origin_check",
            "seq_guard",
        )

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown validation feature"):
            validation_from("telepathy")
        with pytest.raises(ValueError, match="unknown validation feature"):
            validation_from(["seq_guard", "nope"])


class TestValidationConfig:
    def test_off_is_inert(self):
        assert not OFF.any_enabled
        assert not OFF.checks_enabled
        assert OFF.enabled == ()
        assert str(OFF) == "none"

    def test_full_enables_everything(self):
        assert FULL.any_enabled
        assert FULL.checks_enabled
        assert FULL.enabled == FEATURES
        assert str(FULL) == "+".join(FEATURES)

    def test_quarantine_alone_is_not_a_check(self):
        # Quarantine without checks never fires: nothing charges strikes.
        config = ValidationConfig(quarantine=True)
        assert config.any_enabled
        assert not config.checks_enabled

    def test_enabled_is_in_canonical_order(self):
        config = ValidationConfig(term_guard=True, path_check=True)
        assert config.enabled == ("path_check", "term_guard")


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_guard(**overrides):
    defaults = dict(
        quarantine=True, threshold=3,
        quarantine_period=300.0, probation_period=300.0,
    )
    defaults.update(overrides)
    clock = _Clock()
    return NeighborGuard(ValidationConfig(**defaults), clock), clock


class TestNeighborGuard:
    def test_quarantines_at_threshold(self):
        guard, _ = make_guard()
        assert not guard.violation(7, "bad lsa")
        assert not guard.violation(7, "bad lsa")
        assert guard.violation(7, "bad lsa")
        assert guard.total_violations == 3
        assert len(guard.quarantine_events) == 1
        assert guard.quarantine_events[0].neighbor == 7
        # Strikes reset on quarantine: the next cycle starts from zero.
        assert guard.strikes[7] == 0

    def test_strikes_are_per_neighbor(self):
        guard, _ = make_guard()
        guard.violation(1, "x")
        guard.violation(1, "x")
        assert not guard.violation(2, "x")
        assert guard.quarantine_events == []

    def test_suppresses_during_quarantine_only(self):
        guard, clock = make_guard()
        for _ in range(3):
            guard.violation(7, "x")
        assert guard.suppresses(7)
        assert guard.suppressed == 1
        clock.t = 301.0  # past the penalty timer
        assert not guard.suppresses(7)
        assert guard.suppressed == 1

    def test_probation_violation_requarantines_immediately(self):
        guard, clock = make_guard()
        for _ in range(3):
            guard.violation(7, "x")
        clock.t = 301.0
        assert not guard.suppresses(7)  # released, now on probation
        assert guard.violation(7, "relapse")
        assert len(guard.quarantine_events) == 2
        assert guard.suppresses(7)

    def test_probation_expires(self):
        guard, clock = make_guard()
        for _ in range(3):
            guard.violation(7, "x")
        clock.t = 301.0
        guard.suppresses(7)  # release into probation
        clock.t = 301.0 + 300.0  # probation over
        assert not guard.violation(7, "late")  # needs a full cycle again

    def test_honest_neighbor_never_suppressed(self):
        guard, _ = make_guard()
        assert not guard.suppresses(5)

    def test_without_quarantine_only_counts(self):
        guard, _ = make_guard(quarantine=False)
        for _ in range(10):
            assert not guard.violation(7, "x")
        assert guard.total_violations == 10
        assert not guard.suppresses(7)
        assert guard.quarantine_events == []

    def test_summary_counters(self):
        guard, _ = make_guard()
        for _ in range(3):
            guard.violation(7, "x")
        guard.suppresses(7)
        assert guard.summary() == {
            "violations": 3,
            "quarantines": 1,
            "suppressed": 1,
            "quarantined_ads": [7],
        }


class TestRegistryValidationOption:
    def test_default_is_off(self):
        g = mk_graph([(0, "Rt"), (1, "Rt")], [(0, 1)])
        proto = make_protocol("ls-hbh", g, open_db(g))
        assert proto.validation == OFF

    def test_validation_pseudo_option(self):
        g = mk_graph([(0, "Rt"), (1, "Rt")], [(0, 1)])
        proto = make_protocol("ls-hbh", g, open_db(g), validation="all")
        assert proto.validation == FULL

    def test_distributed_to_every_node_at_build(self):
        g = mk_graph([(0, "Rt"), (1, "Rt")], [(0, 1)])
        proto = make_protocol("idrp", g, open_db(g), validation="all")
        proto.build()
        for node in proto.network.nodes.values():
            assert node.validation == FULL
            assert node.guard is not None
        # Validation-off nodes carry no guard at all.
        plain = make_protocol("idrp", g.copy(), open_db(g))
        plain.build()
        assert all(n.guard is None for n in plain.network.nodes.values())


def leak_setting():
    """One backbone between two stubs; the backbone's registered term
    refuses traffic sourced at AD 3, so flow 3->4 has no legal route
    until the backbone leaks (forges an ultra-permissive term)."""
    g = mk_graph([(0, "Bt"), (3, "Cs"), (4, "Cs")], [(0, 3), (0, 4)])
    db = PolicyDatabase([PolicyTerm(owner=0, sources=ADSet.excluding([3]))])
    return g, db


@pytest.mark.parametrize("cls", [LinkStateHopByHopProtocol, IDRPProtocol])
class TestContainment:
    def test_unvalidated_receivers_swallow_a_route_leak(self, cls):
        g, db = leak_setting()
        proto = cls(g, db)
        proto.converge()
        flow = FlowSpec(3, 4)
        assert proto.find_route(flow) is None
        assert proto.start_misbehavior(0, "route-leak")
        proto.network.run()
        # Receivers believed the forged term: the illegal route appears.
        assert proto.find_route(flow) == (3, 0, 4)

    def test_validating_receivers_contain_it(self, cls):
        g, db = leak_setting()
        proto = cls(g, db)
        proto.validation = FULL
        proto.converge()
        flow = FlowSpec(3, 4)
        assert proto.start_misbehavior(0, "route-leak")
        proto.network.run()
        assert proto.find_route(flow) is None
        summary = proto.validation_summary()
        assert summary["violations"] > 0
        assert summary["quarantined_ads"] == [0]
        assert summary["false_quarantines"] == 0

    def test_honest_traffic_trips_nothing(self, cls):
        g, db = leak_setting()
        proto = cls(g, db)
        proto.validation = FULL
        proto.converge()
        summary = proto.validation_summary()
        assert summary["violations"] == 0
        assert summary["quarantines"] == 0
