"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.policy.generators import hierarchical_policies, restricted_policies
from tests.helpers import diamond_graph, line_graph, small_hierarchy


@pytest.fixture
def diamond():
    return diamond_graph()


@pytest.fixture
def line5():
    return line_graph(5)


@pytest.fixture
def hierarchy():
    return small_hierarchy()


@pytest.fixture
def gen_graph():
    """A generated ~26-AD Figure-1 internet (seeded)."""
    return generate_internet(TopologyConfig(seed=42))


@pytest.fixture
def gen_policies(gen_graph):
    return hierarchical_policies(gen_graph).policies


@pytest.fixture
def gen_restricted(gen_graph):
    return restricted_policies(gen_graph, 0.4, seed=7).policies
