"""Tests for convergence runners and failure injection."""

from repro.adgraph.failures import FailurePlan, LinkFailure
from repro.protocols.dv import DistanceVectorProtocol
from repro.simul.runner import converge, run_with_failures
from tests.helpers import mk_graph, open_db


def triangle():
    return mk_graph(
        [(0, "Rt"), (1, "Rt"), (2, "Rt")], [(0, 1), (1, 2), (0, 2)]
    )


class TestConverge:
    def test_initial_convergence_counts_messages(self):
        g = triangle()
        proto = DistanceVectorProtocol(g, open_db(g))
        result = converge(proto.build())
        assert result.messages > 0
        assert result.bytes > 0
        assert result.time > 0

    def test_converge_twice_second_is_free(self):
        g = triangle()
        proto = DistanceVectorProtocol(g, open_db(g))
        converge(proto.build())
        second = converge(proto.build())
        assert second.messages == 0
        assert second.time == 0.0

    def test_quiesced_flag_reports_event_budget_exhaustion(self):
        g = triangle()
        proto = DistanceVectorProtocol(g, open_db(g))
        result = converge(proto.build(), max_events=2)
        assert not result.quiesced
        assert result.events <= 2
        # Resuming with a real budget finishes the job and quiesces.
        rest = converge(proto.build())
        assert rest.quiesced
        assert rest.messages > 0


class TestRunWithFailures:
    def test_episodes_isolated(self):
        g = triangle()
        proto = DistanceVectorProtocol(g, open_db(g))
        plan = FailurePlan((LinkFailure(0.0, 0, 1), LinkFailure(0.0, 0, 1, up=True)))
        initial, episodes = run_with_failures(proto.build(), plan)
        assert initial.messages > 0
        assert len(episodes) == 2
        # Failure then repair both trigger reconvergence traffic.
        assert episodes[0].result.messages > 0
        assert episodes[1].result.messages > 0
        # The graph ends with the link restored.
        assert proto.graph.link(0, 1).up

    def test_tables_correct_after_failure(self):
        g = triangle()
        proto = DistanceVectorProtocol(g, open_db(g))
        plan = FailurePlan((LinkFailure(0.0, 0, 1),))
        run_with_failures(proto.build(), plan)
        from repro.policy.flows import FlowSpec

        # 0 must now reach 1 via 2.
        assert proto.find_route(FlowSpec(0, 1)) == (0, 2, 1)
