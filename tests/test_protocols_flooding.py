"""Tests for the link-state flooding substrate."""


from repro.policy.database import PolicyDatabase
from repro.policy.terms import PolicyTerm
from repro.protocols.flooding import LSNode
from repro.simul.network import SimNetwork
from tests.helpers import line_graph, mk_graph, open_db


def build_ls_network(graph, policies=None, include_terms=True):
    policies = policies or PolicyDatabase()
    net = SimNetwork(graph)
    for ad_id in graph.ad_ids():
        net.add_node(
            LSNode(
                ad_id,
                own_terms=policies.terms_of(ad_id),
                include_terms=include_terms,
            )
        )
    net.start()
    net.run()
    return net


class TestFloodingSync:
    def test_all_nodes_share_identical_lsdb(self, hierarchy):
        net = build_ls_network(hierarchy)
        dbs = [net.node(a).lsdb for a in hierarchy.ad_ids()]
        reference = dbs[0]
        assert set(reference) == set(hierarchy.ad_ids())
        for db in dbs[1:]:
            assert db == reference

    def test_duplicate_lsas_not_reflooded(self):
        g = line_graph(3)
        net = build_ls_network(g)
        before = net.metrics.messages.get("LinkStateAd", 0)
        # Re-delivering an already-known LSA must not cascade.
        lsa = net.node(0).lsdb[2]
        net.node(0).on_message(1, lsa)
        net.run()
        after = net.metrics.messages.get("LinkStateAd", 0)
        assert after == before

    def test_terms_flooded_when_enabled(self, hierarchy):
        db = open_db(hierarchy)
        net = build_ls_network(hierarchy, db)
        _, policies = net.node(3).local_view()
        assert policies.num_terms == db.num_terms

    def test_terms_omitted_when_disabled(self, hierarchy):
        db = open_db(hierarchy)
        net = build_ls_network(hierarchy, db, include_terms=False)
        _, policies = net.node(3).local_view()
        assert policies.num_terms == 0

    def test_term_citations_survive_flooding(self, hierarchy):
        """Term ids reconstructed from LSAs must match the originals, or
        ORWG setup citations would dangle."""
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, charge=1.0))
        db.add_term(PolicyTerm(owner=1, charge=2.0))
        net = build_ls_network(hierarchy, db)
        _, view = net.node(5).local_view()
        assert view.term(1, 0).charge == 1.0
        assert view.term(1, 1).charge == 2.0


class TestLocalView:
    def test_view_matches_topology(self, hierarchy):
        net = build_ls_network(hierarchy)
        graph, _ = net.node(0).local_view()
        assert set(graph.ad_ids()) == set(hierarchy.ad_ids())
        for link in hierarchy.links():
            assert graph.has_link(link.a, link.b)
            assert graph.link(link.a, link.b).metric("delay") == link.metric("delay")

    def test_view_cached_until_change(self, hierarchy):
        net = build_ls_network(hierarchy)
        node = net.node(0)
        g1, p1 = node.local_view()
        g2, p2 = node.local_view()
        assert g1 is g2 and p1 is p2

    def test_link_believed_up_only_if_both_endpoints_agree(self):
        g = line_graph(3)
        net = build_ls_network(g)
        node0 = net.node(0)
        # Forge: node 1 re-originates claiming 1-2 down, node 2 silent.
        g.set_link_status(1, 2, up=False)
        net.node(1).originate()
        net.run()
        graph, _ = node0.local_view()
        assert not graph.link(1, 2).up


class TestDynamics:
    def test_failure_reflooded_and_views_updated(self, hierarchy):
        net = build_ls_network(hierarchy)
        net.set_link_status(0, 1, up=False)
        net.run()
        for ad_id in hierarchy.ad_ids():
            graph, _ = net.node(ad_id).local_view()
            assert not graph.link(0, 1).up

    def test_repair_and_database_exchange(self, hierarchy):
        net = build_ls_network(hierarchy)
        net.set_link_status(0, 1, up=False)
        net.run()
        net.set_link_status(0, 1, up=True)
        net.run()
        for ad_id in hierarchy.ad_ids():
            graph, _ = net.node(ad_id).local_view()
            assert graph.link(0, 1).up

    def test_partition_heals_after_repair(self):
        """Changes made during a partition propagate once it heals."""
        g = mk_graph(
            [(0, "Rt"), (1, "Rt"), (2, "Rt"), (3, "Rt")],
            [(0, 1), (1, 2), (2, 3)],
        )
        net = build_ls_network(g)
        net.set_link_status(1, 2, up=False)
        net.run()
        # During the partition, fail 2-3 too: side {0,1} can't know.
        net.set_link_status(2, 3, up=False)
        net.run()
        g01_view, _ = net.node(0).local_view()
        assert g01_view.link(2, 3).up  # stale, as expected
        # Heal the partition: database exchange brings node 0 up to date.
        net.set_link_status(1, 2, up=True)
        net.run()
        g01_view, _ = net.node(0).local_view()
        assert not g01_view.link(2, 3).up

    def test_db_version_bumps_on_change(self, hierarchy):
        net = build_ls_network(hierarchy)
        node = net.node(3)
        v = node.db_version
        net.set_link_status(0, 1, up=False)
        net.run()
        assert node.db_version > v

    def test_lsdb_bytes_positive(self, hierarchy):
        net = build_ls_network(hierarchy, open_db(hierarchy))
        assert net.node(0).lsdb_bytes() > 0
