"""Unit tests for the AD and link value types."""

import pytest

from repro.adgraph.ad import ADKind, InterADLink, Level, LinkKind, canonical_link_key


class TestLevel:
    def test_rank_inverts_level(self):
        assert Level.BACKBONE.rank == 3
        assert Level.REGIONAL.rank == 2
        assert Level.METRO.rank == 1
        assert Level.CAMPUS.rank == 0

    def test_backbone_is_numerically_highest(self):
        assert Level.BACKBONE < Level.CAMPUS


class TestADKind:
    def test_transit_kinds(self):
        assert ADKind.TRANSIT.may_transit
        assert ADKind.HYBRID.may_transit

    def test_non_transit_kinds(self):
        assert not ADKind.STUB.may_transit
        assert not ADKind.MULTIHOMED.may_transit


class TestInterADLink:
    def test_endpoints_are_canonicalised(self):
        link = InterADLink(5, 2, LinkKind.LATERAL)
        assert (link.a, link.b) == (2, 5)
        assert link.key == (2, 5)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            InterADLink(3, 3, LinkKind.LATERAL)

    def test_negative_metric_rejected(self):
        with pytest.raises(ValueError):
            InterADLink(1, 2, LinkKind.LATERAL, {"delay": -1.0})

    def test_other_endpoint(self):
        link = InterADLink(1, 2, LinkKind.BYPASS)
        assert link.other(1) == 2
        assert link.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        link = InterADLink(1, 2, LinkKind.BYPASS)
        with pytest.raises(ValueError):
            link.other(3)

    def test_metric_defaults_to_unit(self):
        link = InterADLink(1, 2, LinkKind.LATERAL, {"delay": 7.0})
        assert link.metric("delay") == 7.0
        assert link.metric("cost") == 1.0
        assert link.metric("cost", default=3.0) == 3.0

    def test_links_default_up(self):
        assert InterADLink(1, 2, LinkKind.LATERAL).up


def test_canonical_link_key():
    assert canonical_link_key(4, 1) == (1, 4)
    assert canonical_link_key(1, 4) == (1, 4)
