"""Engine heap hygiene and the perf-config plumbing.

Pins the cancelled-handle compaction contract: cancelling more than half
of a large queue compacts it in place (heap shrinks, ``compactions``
increments) without perturbing the (time, seq) pop order of the
survivors, while small queues rely on the cheaper lazy skip.  Also pins
how :class:`~repro.protocols.perf.PerfConfig` travels: the ``perf``
pseudo-option in :func:`~repro.protocols.registry.make_protocol`, the
build-time distribution to every node, and the restamping of
state-losing restarts.
"""

from __future__ import annotations

import pytest

from repro.adgraph.ad import AD, ADKind, InterADLink, Level, LinkKind
from repro.adgraph.graph import InterADGraph
from repro.policy.database import PolicyDatabase
from repro.protocols.perf import FAST, LEGACY, PerfConfig, perf_from
from repro.protocols.registry import make_protocol
from repro.simul.engine import Simulator


# ------------------------------------------------------------ heap hygiene


def test_cancelling_most_of_a_large_queue_compacts_it():
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(float(i), fired.append, i) for i in range(100)
    ]
    for handle in handles[:60]:
        handle.cancel()
    # The 51st cancel tips past 50%: the queue compacts to the 49
    # then-surviving entries; the last 9 cancels stay lazy tombstones.
    assert sim.compactions == 1
    assert sim.pending == 49
    sim.run()
    assert fired == list(range(60, 100))  # survivor order intact


def test_small_queues_skip_lazily_without_compacting():
    sim = Simulator()
    fired = []
    handles = [sim.schedule(float(i), fired.append, i) for i in range(10)]
    for handle in handles[:9]:
        handle.cancel()
    assert sim.compactions == 0
    assert sim.pending == 10  # tombstones still queued ...
    sim.run()
    assert fired == [9]  # ... but skipped at pop time
    assert sim.pending == 0


def test_interleaved_cancellations_preserve_determinism():
    """Same schedule, cancel pattern crossing the compaction threshold:
    the surviving firing order must equal the never-compacted order."""

    def drive(n):
        sim = Simulator()
        fired = []
        handles = []
        for i in range(n):
            # Deliberate time collisions so seq tie-breaks matter.
            handles.append(sim.schedule(float(i % 7), fired.append, i))
        for i, handle in enumerate(handles):
            if i % 4 != 0:  # cancel 3 of every 4
                handle.cancel()
        sim.run()
        return fired, sim.compactions

    small, small_compactions = drive(40)
    large, compactions = drive(400)
    assert small_compactions == 0 and compactions >= 1
    expected = sorted(
        (i for i in range(400) if i % 4 == 0), key=lambda i: (i % 7, i)
    )
    assert large == expected
    assert small == [i for i in expected if i < 40]


def test_cancel_is_idempotent_and_post_fire_cancel_is_harmless():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    victim = sim.schedule(2.0, fired.append, "y")
    victim.cancel()
    victim.cancel()  # double-cancel counts once
    assert sim._cancelled_pending == 1
    sim.run()
    assert fired == ["x"]
    assert sim._cancelled_pending == 0
    handle.cancel()  # already fired: marks the flag, no counter drift
    assert handle.cancelled
    assert sim._cancelled_pending == 0


def test_compaction_counter_survives_lazy_pops():
    sim = Simulator()
    early = [sim.schedule(float(i), lambda: None) for i in range(100)]
    extra = [sim.schedule(200.0 + i, lambda: None) for i in range(100)]
    for handle in early[:50]:
        handle.cancel()  # 50 of 200: below the compaction threshold
    assert sim.compactions == 0
    sim.run(until=150.0)  # lazily pops the early half, tombstones included
    assert sim._cancelled_pending == 0  # the lazy pops drained the counter
    for handle in extra[:60]:
        handle.cancel()
    # Were the counter stale (still 50), the very first cancel would
    # have compacted; the fresh count compacts exactly at the 51st.
    assert sim.compactions == 1
    assert sim.pending == 49


# -------------------------------------------------------- config plumbing


def test_perf_from_parses_the_cli_forms():
    assert perf_from(None) == FAST
    assert perf_from("all") == FAST
    assert perf_from("none") == LEGACY
    assert perf_from("incremental-spf") == PerfConfig(
        incremental_spf=True, delta_view=False
    )
    assert perf_from(["delta_view"]) == PerfConfig(
        incremental_spf=False, delta_view=True
    )
    assert perf_from(LEGACY) is LEGACY
    with pytest.raises(ValueError):
        perf_from("warp-drive")


def test_perf_config_strings():
    assert str(FAST) == "incremental_spf+delta_view"
    assert str(LEGACY) == "none"
    assert not LEGACY.any_enabled
    assert FAST.enabled == ("incremental_spf", "delta_view")


def triangle():
    graph = InterADGraph()
    for ad_id in range(3):
        graph.add_ad(AD(ad_id, f"ad{ad_id}", Level.CAMPUS, ADKind.HYBRID))
    for a, b in [(0, 1), (1, 2), (0, 2)]:
        graph.add_link(InterADLink(a, b, LinkKind.HIERARCHICAL, {"delay": 1.0}))
    return graph


def test_registry_perf_option_reaches_every_node():
    protocol = make_protocol("plain-ls", triangle(), PolicyDatabase(), perf="none")
    assert protocol.perf == LEGACY
    network = protocol.build()
    assert all(node.perf == LEGACY for node in network.nodes.values())


def test_perf_defaults_on_and_survives_stateless_restart():
    protocol = make_protocol("plain-ls", triangle(), PolicyDatabase(), perf="none")
    protocol.converge()
    protocol.crash_node(1, retain_state=False)
    protocol.restore_node(1)
    assert protocol.network.nodes[1].perf == LEGACY
    # And the default, untouched, is the fast config everywhere.
    fast = make_protocol("plain-ls", triangle(), PolicyDatabase())
    assert fast.perf == FAST
    assert all(n.perf == FAST for n in fast.build().nodes.values())
