"""Equivalence of the delta local-view with the full rebuild oracle.

Two :class:`~repro.protocols.flooding.LSNode`\\ s are fed identical LSA
install sequences; one refreshes its view by per-LSA deltas (the
``delta_view`` fast path), the other rebuilds from scratch every time.
After every refresh the believed graphs and policy databases must be
indistinguishable -- same ADs, levels, links, metrics, statuses, and
per-owner stamped terms.  Targeted cases pin the invalidation rules:
cross-owner terms (term forgery) and origin level changes must force a
full rebuild rather than a wrong delta.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adgraph.ad import Level
from repro.policy.terms import PolicyTerm
from repro.protocols.flooding import LinkRecord, LinkStateAd, LSNode
from repro.protocols.perf import LEGACY

NODE_ID = 0
ORIGINS = [0, 1, 2, 3, 4]
METRICS = [1.0, 2.0, 8.0]


def make_nodes():
    delta = LSNode(NODE_ID)
    oracle = LSNode(NODE_ID)
    oracle.perf = LEGACY
    assert delta.perf.delta_view  # defaults on
    return delta, oracle


def assert_views_equal(delta, oracle):
    dg, dp = delta.local_view()
    og, op = oracle.local_view()
    assert dg.ad_ids() == og.ad_ids()
    for ad_id in og.ad_ids():
        assert dg.ad(ad_id).level == og.ad(ad_id).level
    d_links = {ln.key: ln for ln in dg.links()}
    o_links = {ln.key: ln for ln in og.links()}
    assert d_links.keys() == o_links.keys()
    for key, o_ln in o_links.items():
        d_ln = d_links[key]
        assert d_ln.metrics == o_ln.metrics, key
        assert d_ln.up == o_ln.up, key
    assert dp.owners() == op.owners()
    for owner in op.owners():
        assert dp.terms_of(owner) == op.terms_of(owner)


@st.composite
def lsa_sequences(draw):
    """Batches of LSA installs over a small origin set.

    Sequence numbers strictly increase per origin so every install
    lands (staleness is the flooding layer's concern, not the view's).
    """
    n_batches = draw(st.integers(min_value=1, max_value=6))
    seqs = dict.fromkeys(ORIGINS, 0)
    record = st.builds(
        LinkRecord,
        neighbor=st.sampled_from(ORIGINS),
        delay=st.sampled_from(METRICS),
        cost=st.sampled_from(METRICS),
        up=st.booleans(),
        bandwidth=st.sampled_from(METRICS),
    )
    batches = []
    for _ in range(n_batches):
        batch = []
        for origin in draw(
            st.lists(st.sampled_from(ORIGINS), min_size=1, max_size=4)
        ):
            seqs[origin] += 1
            links = tuple(
                rec
                for rec in draw(st.lists(record, max_size=4))
                if rec.neighbor != origin
            )
            terms = tuple(
                PolicyTerm(owner=origin, charge=float(c))
                for c in draw(
                    st.lists(st.integers(min_value=0, max_value=3), max_size=3)
                )
            )
            batch.append(
                LinkStateAd(
                    origin=origin, seq=seqs[origin], links=links, terms=terms
                )
            )
        batches.append(batch)
    return batches


@settings(max_examples=150, deadline=None)
@given(lsa_sequences())
def test_delta_view_matches_rebuilt_view(batches):
    delta, oracle = make_nodes()
    for batch in batches:
        for lsa in batch:
            delta._install(lsa)
            oracle._install(lsa)
        assert_views_equal(delta, oracle)
    # Steady state: the delta node must actually be exercising the fast
    # path, not silently rebuilding every time.
    if len(batches) > 1:
        assert delta.view_rebuilds <= 1


def lsa(origin, seq, neighbors, terms=(), level=Level.CAMPUS):
    return LinkStateAd(
        origin=origin,
        seq=seq,
        links=tuple(LinkRecord(n, 1.0, 1.0, True) for n in neighbors),
        terms=terms,
        origin_level=level,
    )


def test_duplicate_records_first_one_wins():
    delta, oracle = make_nodes()
    weird = LinkStateAd(
        origin=1,
        seq=1,
        links=(LinkRecord(0, 5.0, 5.0, True), LinkRecord(0, 1.0, 1.0, False)),
    )
    for node in (delta, oracle):
        node._install(lsa(0, 1, [1]))
    assert_views_equal(delta, oracle)
    for node in (delta, oracle):
        node._install(weird)
    assert_views_equal(delta, oracle)
    graph, _ = delta.local_view()
    assert graph.link(0, 1).metrics["delay"] == 1.0  # smaller endpoint's rec


def test_cross_owner_term_forces_full_rebuild():
    delta, oracle = make_nodes()
    for node in (delta, oracle):
        node._install(lsa(0, 1, [1]))
        node._install(lsa(1, 1, [0]))
    assert_views_equal(delta, oracle)
    forged = (PolicyTerm(owner=2, term_id=9_999),)  # owner != origin
    for node in (delta, oracle):
        node._install(lsa(1, 2, [0], terms=forged))
    assert delta._cross_owner_terms
    rebuilds_before = delta.view_rebuilds
    assert_views_equal(delta, oracle)
    assert delta.view_rebuilds == rebuilds_before + 1
    # ... and stays sticky: later honest installs still rebuild.
    for node in (delta, oracle):
        node._install(lsa(1, 3, [0]))
    assert_views_equal(delta, oracle)
    assert delta.view_rebuilds == rebuilds_before + 2


def test_origin_level_change_forces_full_rebuild():
    delta, oracle = make_nodes()
    for node in (delta, oracle):
        node._install(lsa(0, 1, [1]))
        node._install(lsa(1, 1, [0], level=Level.CAMPUS))
    assert_views_equal(delta, oracle)
    for node in (delta, oracle):
        node._install(lsa(1, 2, [0], level=Level.REGIONAL))
    rebuilds_before = delta.view_rebuilds
    assert_views_equal(delta, oracle)
    assert delta.view_rebuilds == rebuilds_before + 1
    graph, _ = delta.local_view()
    assert graph.ad(1).level == Level.REGIONAL


def test_view_edge_changes_tiles_versions():
    delta, _ = make_nodes()
    delta._install(lsa(0, 1, [1]))
    delta._install(lsa(1, 1, [0]))
    delta.local_view()
    v0 = delta.db_version
    assert delta.view_edge_changes(v0) == []
    delta._install(lsa(1, 2, []))  # withdraw the adjacency
    delta.local_view()
    assert delta.view_edge_changes(v0) == [(0, 1)]
    assert delta.view_edge_changes(v0 - 1) is None  # predates the log
    delta._install(lsa(1, 3, [0]))
    assert delta.view_edge_changes(v0) is None  # view not refreshed yet
    delta.local_view()
    assert delta.view_edge_changes(v0) == [(0, 1), (0, 1)]


def test_same_content_reissue_reports_no_edge_changes():
    delta, _ = make_nodes()
    delta._install(lsa(0, 1, [1]))
    delta._install(lsa(1, 1, [0]))
    delta.local_view()
    v0 = delta.db_version
    delta._install(lsa(1, 2, [0]))  # refresh re-origination, same content
    delta.local_view()
    assert delta.view_edge_changes(v0) == []
