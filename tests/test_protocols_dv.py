"""Tests for the naive distance-vector baseline."""


from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.protocols.dv import DistanceVectorProtocol
from tests.helpers import line_graph, mk_graph


def ring(n):
    return mk_graph(
        [(i, "Rt") for i in range(n)],
        [(i, (i + 1) % n) for i in range(n)],
    )


class TestConvergence:
    def test_line_converges_to_shortest_paths(self):
        g = line_graph(4)
        proto = DistanceVectorProtocol(g, PolicyDatabase())
        proto.converge()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 2, 3)
        assert proto.find_route(FlowSpec(3, 1)) == (3, 2, 1)

    def test_ring_prefers_short_way_round(self):
        g = ring(5)
        proto = DistanceVectorProtocol(g, PolicyDatabase())
        proto.converge()
        assert proto.find_route(FlowSpec(0, 1)) == (0, 1)
        assert proto.find_route(FlowSpec(0, 4)) == (0, 4)
        path = proto.find_route(FlowSpec(0, 2))
        assert path in {(0, 1, 2)}

    def test_all_pairs_reachable(self, gen_graph):
        proto = DistanceVectorProtocol(gen_graph, PolicyDatabase())
        proto.converge()
        ids = gen_graph.ad_ids()
        for src in ids[:5]:
            for dst in ids[-5:]:
                if src != dst:
                    assert proto.find_route(FlowSpec(src, dst)) is not None

    def test_rib_counts_reachable(self, gen_graph):
        proto = DistanceVectorProtocol(gen_graph, PolicyDatabase())
        proto.converge()
        assert proto.rib_size(gen_graph.ad_ids()[0]) == gen_graph.num_ads


class TestFailureResponse:
    def test_reroutes_after_failure(self):
        g = ring(4)
        proto = DistanceVectorProtocol(g, PolicyDatabase())
        proto.converge()
        assert proto.find_route(FlowSpec(0, 1)) == (0, 1)
        proto.network.set_link_status(0, 1, up=False)
        proto.network.run()
        assert proto.find_route(FlowSpec(0, 1)) == (0, 3, 2, 1)

    def test_unreachable_after_partition(self):
        g = line_graph(3)
        proto = DistanceVectorProtocol(g, PolicyDatabase())
        proto.converge()
        proto.network.set_link_status(1, 2, up=False)
        proto.network.run()
        assert proto.find_route(FlowSpec(0, 2)) is None

    @staticmethod
    def _count_to_infinity_graph():
        """Triangle 0-1-2 with a stub 3 on 2; the 0-2 link is slow.

        After 2-3 dies, 2's withdrawal reaches 1 quickly, 1's re-learned
        stale route (via 0, which still believes in the old path) starts
        the classic bounce, and the slow 0-2 link keeps stale finite
        offers in flight -- count-to-infinity until the metric cap.
        """
        return mk_graph(
            [(0, "Rt"), (1, "Rt"), (2, "Rt"), (3, "Rt")],
            [(0, 1), (1, 2), (0, 2), (2, 3)],
            metrics={
                (0, 2): {"delay": 25.0, "cost": 1.0},
            },
        )

    def _failure_cost(self, infinity):
        g = self._count_to_infinity_graph()
        proto = DistanceVectorProtocol(g, PolicyDatabase(), infinity=infinity)
        proto.converge()
        before = proto.network.metrics.snapshot(proto.network.sim.now)
        proto.network.set_link_status(2, 3, up=False)
        proto.network.run()
        after = proto.network.metrics.snapshot(proto.network.sim.now)
        assert proto.find_route(FlowSpec(0, 3)) is None
        return after.delta(before).total_messages

    def test_count_to_infinity_produces_bounce_rounds(self):
        assert self._failure_cost(infinity=16) >= 10

    def test_count_to_infinity_scales_with_metric_cap(self):
        """The paper's slow-convergence complaint: the bounce length is
        set by the 'infinity' cap, so raising the cap costs messages."""
        assert self._failure_cost(infinity=32) > self._failure_cost(infinity=8)

    def test_repair_restores_routes(self):
        g = line_graph(3)
        proto = DistanceVectorProtocol(g, PolicyDatabase())
        proto.converge()
        proto.network.set_link_status(1, 2, up=False)
        proto.network.run()
        proto.network.set_link_status(1, 2, up=True)
        proto.network.run()
        assert proto.find_route(FlowSpec(0, 2)) == (0, 1, 2)


class TestPolicyBlindness:
    def test_ignores_policies_entirely(self, gen_graph, gen_restricted):
        open_proto = DistanceVectorProtocol(gen_graph.copy(), PolicyDatabase())
        tight_proto = DistanceVectorProtocol(gen_graph.copy(), gen_restricted)
        open_proto.converge()
        tight_proto.converge()
        flow = FlowSpec(gen_graph.ad_ids()[0], gen_graph.ad_ids()[-1])
        assert open_proto.find_route(flow) == tight_proto.find_route(flow)
        assert not DistanceVectorProtocol.policy_aware
