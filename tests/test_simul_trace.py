"""Tests for the event tracer."""

import pytest

from repro.policy.database import PolicyDatabase
from repro.protocols.dv import DistanceVectorProtocol, DVUpdate
from repro.simul.trace import Tracer
from tests.helpers import line_graph


@pytest.fixture
def traced_run():
    g = line_graph(3)
    proto = DistanceVectorProtocol(g, PolicyDatabase())
    net = proto.build()
    tracer = Tracer.attach(net)
    proto.converge()
    return proto, tracer


class TestTracer:
    def test_records_every_delivery(self, traced_run):
        proto, tracer = traced_run
        delivered = sum(proto.network.metrics.messages.values())
        assert len(tracer.filtered(kind="msg")) == delivered

    def test_message_counts_match_metrics(self, traced_run):
        proto, tracer = traced_run
        assert tracer.message_counts()["DVUpdate"] == (
            proto.network.metrics.messages["DVUpdate"]
        )

    def test_link_changes_recorded(self, traced_run):
        proto, tracer = traced_run
        proto.network.set_link_status(0, 1, up=False)
        proto.network.run()
        link_events = tracer.filtered(kind="link")
        assert len(link_events) == 1
        assert link_events[0].detail == "DOWN"

    def test_ad_filter(self, traced_run):
        _, tracer = traced_run
        for rec in tracer.filtered(ad=0):
            assert 0 in (rec.src, rec.dst)

    def test_since_filter(self, traced_run):
        proto, tracer = traced_run
        t = proto.network.sim.now
        proto.network.set_link_status(0, 1, up=False)
        proto.network.run()
        late = tracer.filtered(since=t)
        assert late
        assert all(r.time >= t for r in late)

    def test_conversation_is_symmetric_pairwise(self, traced_run):
        _, tracer = traced_run
        convo = tracer.conversation(0, 1)
        assert convo
        for rec in convo:
            assert {rec.src, rec.dst} == {0, 1}

    def test_timeline_renders(self, traced_run):
        _, tracer = traced_run
        text = tracer.timeline(limit=5)
        assert "DVUpdate" in text
        assert "elided" in text or len(tracer) <= 5

    def test_capacity_bound(self):
        g = line_graph(3)
        proto = DistanceVectorProtocol(g, PolicyDatabase())
        net = proto.build()
        tracer = Tracer.attach(net, capacity=3)
        proto.converge()
        assert len(tracer) == 3
        assert tracer.dropped_records > 0

    def test_tracing_does_not_change_outcome(self):
        from repro.policy.flows import FlowSpec

        g1, g2 = line_graph(4), line_graph(4)
        plain = DistanceVectorProtocol(g1, PolicyDatabase())
        plain.converge()
        traced = DistanceVectorProtocol(g2, PolicyDatabase())
        Tracer.attach(traced.build())
        traced.converge()
        flow = FlowSpec(0, 3)
        assert plain.find_route(flow) == traced.find_route(flow)
        assert (
            plain.network.metrics.messages == traced.network.metrics.messages
        )

    def test_capacity_validation(self):
        g = line_graph(2)
        net = DistanceVectorProtocol(g, PolicyDatabase()).build()
        with pytest.raises(ValueError):
            Tracer.attach(net, capacity=0)

    def test_empty_timeline(self):
        g = line_graph(2)
        net = DistanceVectorProtocol(g, PolicyDatabase()).build()
        tracer = Tracer.attach(net)
        assert tracer.timeline() == "(no events)"
