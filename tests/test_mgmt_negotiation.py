"""Tests for ECMA ordering negotiation and charge accounting."""

import pytest

from repro.mgmt.accounting import settle
from repro.mgmt.negotiation import negotiate_ordering, renegotiate
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.terms import PolicyTerm
from repro.workloads.traffic import TrafficMatrix
from tests.helpers import line_graph


class TestNegotiation:
    def test_compatible_demands_all_accepted(self):
        result = negotiate_ordering([1, 2, 3], [(1, 2), (2, 3), (1, 3)])
        assert result.dropped == []
        assert result.acceptance_ratio == 1.0
        assert result.order.rank(1) < result.order.rank(2) < result.order.rank(3)

    def test_conflicting_demand_dropped(self):
        result = negotiate_ordering([1, 2], [(1, 2), (2, 1)])
        assert result.accepted == [(1, 2)]
        assert result.dropped == [(2, 1)]
        assert result.losers() == {2: 1}

    def test_priority_order_decides_winner(self):
        first = negotiate_ordering([1, 2], [(1, 2), (2, 1)])
        second = negotiate_ordering([1, 2], [(2, 1), (1, 2)])
        assert first.accepted == [(1, 2)]
        assert second.accepted == [(2, 1)]

    def test_self_demand_dropped(self):
        result = negotiate_ordering([1], [(1, 1)])
        assert result.dropped == [(1, 1)]

    def test_longer_cycle_partially_accepted(self):
        result = negotiate_ordering([1, 2, 3], [(1, 2), (2, 3), (3, 1)])
        assert len(result.accepted) == 2
        assert result.dropped == [(3, 1)]

    def test_summary_names_losers(self):
        result = negotiate_ordering([1, 2], [(1, 2), (2, 1)])
        assert "AD 2" in result.summary()

    def test_empty_demands(self):
        result = negotiate_ordering([1, 2], [])
        assert result.acceptance_ratio == 1.0


class TestRenegotiate:
    def test_compatible_new_demand_accepted(self):
        accepted, result = renegotiate([1, 2, 3], [(1, 2)], (2, 3))
        assert accepted
        assert (2, 3) in result.accepted

    def test_conflicting_new_demand_rejected(self):
        accepted, result = renegotiate([1, 2], [(1, 2)], (2, 1))
        assert not accepted
        assert (2, 1) in result.dropped
        # Incumbent constraints survive.
        assert (1, 2) in result.accepted


class TestAccounting:
    @pytest.fixture
    def charged_line(self):
        g = line_graph(4)
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, charge=2.0))
        db.add_term(PolicyTerm(owner=2, charge=3.0))
        return g, db

    def test_charges_settled_per_transit(self, charged_line):
        g, db = charged_line
        matrix = TrafficMatrix(((FlowSpec(0, 3), 10.0),))
        ledger = settle(g, db, matrix)
        assert ledger.routed_volume == 10.0
        assert ledger.entry(1).revenue == 20.0
        assert ledger.entry(2).revenue == 30.0
        assert ledger.entry(0).paid == 50.0
        assert ledger.total_revenue == ledger.total_paid == 50.0

    def test_unrouted_volume_tracked(self, charged_line):
        g, db = charged_line
        g.set_link_status(1, 2, up=False)
        matrix = TrafficMatrix(((FlowSpec(0, 3), 5.0),))
        ledger = settle(g, db, matrix)
        assert ledger.unrouted_volume == 5.0
        assert ledger.total_revenue == 0.0

    def test_direct_neighbours_pay_nothing(self, charged_line):
        g, db = charged_line
        matrix = TrafficMatrix(((FlowSpec(0, 1), 7.0),))
        ledger = settle(g, db, matrix)
        assert ledger.total_revenue == 0.0
        assert ledger.entry(0).originated_volume == 7.0

    def test_custom_finder(self, charged_line):
        g, db = charged_line
        matrix = TrafficMatrix(((FlowSpec(0, 3), 1.0),))
        ledger = settle(g, db, matrix, finder=lambda f: (0, 1, 2, 3))
        assert ledger.entry(1).carried_volume == 1.0

    def test_top_earners_and_summary(self, charged_line):
        g, db = charged_line
        matrix = TrafficMatrix(
            ((FlowSpec(0, 3), 1.0), (FlowSpec(3, 0), 2.0))
        )
        ledger = settle(g, db, matrix)
        earners = ledger.top_earners(1)
        assert earners[0][0] == 2  # charge 3.0 x volume 3
        assert "Accounting" in ledger.summary()


class TestAccountingProperties:
    """Conservation invariants over random traffic and policies."""

    def test_revenue_equals_payments(self, gen_graph, gen_restricted):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.workloads.traffic import uniform_traffic

        @settings(max_examples=10, deadline=None)
        @given(seed=st.integers(0, 1000))
        def check(seed):
            matrix = uniform_traffic(gen_graph, 15, seed=seed)
            ledger = settle(gen_graph, gen_restricted, matrix)
            assert ledger.total_revenue == pytest.approx(ledger.total_paid)
            assert ledger.routed_volume + ledger.unrouted_volume == pytest.approx(
                matrix.total_weight
            )
            for entry in ledger.entries.values():
                assert entry.revenue >= 0 and entry.paid >= 0

        check()
