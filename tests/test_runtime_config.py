"""The unified node runtime config and the engine/transport boundary.

One container (:class:`NodeRuntimeConfig`) now carries every build-time
node knob -- hardening, validation, pacing, perf, ingress -- through one
distribution hook; these tests pin the container's semantics, the
registry's option handling, and the transport-level timer contract that
both substrates implement.
"""

import pytest

from repro.policy.generators import open_policies
from repro.protocols.hardening import HardeningConfig, hardening_from
from repro.protocols.pacing import PacingConfig
from repro.protocols.perf import PerfConfig
from repro.protocols.registry import make_protocol
from repro.protocols.runtime import NodeRuntimeConfig, runtime_from
from repro.protocols.validation import ValidationConfig
from repro.simul.engine import Simulator
from repro.simul.ingress import IngressConfig
from repro.simul.network import SimNetwork
from repro.simul.transport import Clock, TimerHandle, Transport

from .helpers import mk_graph


def small_setting():
    graph = mk_graph(
        [(i, "Rt") for i in range(4)],
        [(0, 1), (1, 2), (2, 3), (3, 0)],
    )
    return graph, open_policies(graph).policies


# ------------------------------------------------------------- the container


def test_default_runtime_is_inert():
    runtime = NodeRuntimeConfig()
    assert not runtime.hardening.any_enabled
    assert not runtime.validation.any_enabled
    assert not runtime.pacing.any_enabled
    assert runtime.ingress is None


def test_replace_returns_new_container():
    runtime = NodeRuntimeConfig()
    hardened = runtime.replace(hardening=hardening_from("all"))
    assert hardened is not runtime
    assert hardened.hardening.any_enabled
    assert not runtime.hardening.any_enabled  # original untouched
    assert hardened.pacing == runtime.pacing


def test_runtime_from_accepts_primitives():
    runtime = runtime_from(
        hardening="all",
        validation="all",
        pacing="pace",
        ingress=IngressConfig(capacity=8),
    )
    assert runtime.hardening.any_enabled
    assert runtime.validation.any_enabled
    assert runtime.pacing.any_enabled
    assert runtime.ingress.capacity == 8
    assert isinstance(runtime.hardening, HardeningConfig)
    assert isinstance(runtime.validation, ValidationConfig)
    assert isinstance(runtime.pacing, PacingConfig)
    assert isinstance(runtime.perf, PerfConfig)


# --------------------------------------------------- protocol-facing surface


def test_component_properties_delegate_to_runtime():
    graph, policies = small_setting()
    proto = make_protocol("plain-ls", graph, policies)
    proto.hardening = hardening_from("all")
    assert proto.runtime.hardening is proto.hardening
    assert proto.runtime.hardening.any_enabled
    # The other components rode along unchanged.
    assert not proto.runtime.pacing.any_enabled


def test_build_stamps_every_node_once():
    graph, policies = small_setting()
    proto = make_protocol("plain-ls", graph, policies,
                          hardening="all", pacing="pace")
    network = proto.build()
    for node in network.nodes.values():
        assert node.hardening is proto.runtime.hardening
        assert node.pacing is proto.runtime.pacing
        assert node.perf is proto.runtime.perf


def test_registry_runtime_option():
    graph, policies = small_setting()
    runtime = runtime_from(hardening="all")
    proto = make_protocol("plain-ls", graph, policies, runtime=runtime)
    assert proto.runtime is runtime


def test_registry_rejects_runtime_plus_components():
    graph, policies = small_setting()
    with pytest.raises(ValueError, match="not both"):
        make_protocol("plain-ls", graph, policies,
                      runtime=NodeRuntimeConfig(), hardening="all")


def test_registry_rejects_bad_runtime_type():
    graph, policies = small_setting()
    with pytest.raises(TypeError, match="NodeRuntimeConfig"):
        make_protocol("plain-ls", graph, policies, runtime="all")


def test_registry_substrate_option():
    graph, policies = small_setting()
    proto = make_protocol("plain-ls", graph, policies, substrate="live")
    assert proto.substrate == "live"
    assert make_protocol("plain-ls", graph.copy(), policies.copy()).substrate == "sim"
    with pytest.raises(ValueError, match="substrate"):
        make_protocol("plain-ls", graph.copy(), policies.copy(),
                      substrate="quantum")


def test_ingress_distributed_through_runtime():
    graph, policies = small_setting()
    proto = make_protocol("plain-ls", graph, policies,
                          ingress=IngressConfig(capacity=16))
    network = proto.build()
    assert network.ingress is not None
    assert network.ingress.config.capacity == 16


# ------------------------------------------------- transport timer contract


def test_sim_network_implements_transport():
    graph, policies = small_setting()
    proto = make_protocol("plain-ls", graph, policies)
    network = proto.build()
    assert isinstance(network, Transport)
    assert isinstance(network.clock, Clock)
    assert network.clock.now == network.sim.now


def test_schedule_returns_timer_handle_cancel_after_fire():
    """The documented contract: cancel() after the timer fired is a
    harmless no-op, on any substrate."""
    graph, policies = small_setting()
    proto = make_protocol("plain-ls", graph, policies)
    network = proto.build()
    node = network.nodes[0]
    fired = []
    handle = node.schedule(1.0, fired.append, "x")
    assert isinstance(handle, TimerHandle)
    network.sim.run(max_events=100)
    assert fired == ["x"]
    handle.cancel()  # after fire: no error, no effect
    handle.cancel()  # idempotent
    assert handle.cancelled


def test_retired_node_timers_never_fire():
    graph, policies = small_setting()
    proto = make_protocol("plain-ls", graph, policies)
    network = proto.build()
    node = network.nodes[0]
    fired = []
    node.schedule(1.0, fired.append, "x")
    node.retire()
    network.sim.run(max_events=100)
    assert fired == []


def test_sim_clock_call_later_matches_schedule():
    sim = Simulator()
    graph, _ = small_setting()
    network = SimNetwork(graph)
    order = []
    network.clock.call_later(2.0, order.append, "b")
    network.clock.call_later(1.0, order.append, "a")
    network.sim.run(max_events=10)
    assert order == ["a", "b"]
    assert sim.now == 0.0  # the scratch simulator was never involved
