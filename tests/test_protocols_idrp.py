"""Tests for IDRP / BGP-2 (path vector + policy attributes)."""


from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import source_class_policies
from repro.policy.legality import is_legal_path
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.protocols.idrp import BGP2Protocol, IDRPProtocol
from tests.helpers import diamond_graph, line_graph, mk_graph, open_db


class TestBasicRouting:
    def test_line_routing(self):
        g = line_graph(4)
        proto = IDRPProtocol(g, open_db(g))
        proto.converge()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 2, 3)

    def test_loop_suppression_via_path(self):
        g = diamond_graph()
        proto = IDRPProtocol(g, open_db(g))
        proto.converge()
        node = proto.network.node(1)
        for per_nbr in node.rib_in.values():
            for ad in per_nbr.values():
                assert 1 not in ad.path or ad.is_withdrawal

    def test_selected_paths_loop_free(self, gen_graph, gen_policies):
        proto = IDRPProtocol(gen_graph, gen_policies)
        proto.converge()
        for ad_id in gen_graph.ad_ids():
            node = proto.network.node(ad_id)
            for entry in node.loc.values():
                assert len(set(entry.path)) == len(entry.path)

    def test_stubs_never_advertise_transit(self, gen_graph, gen_policies):
        proto = IDRPProtocol(gen_graph, gen_policies)
        proto.converge()
        for ad in gen_graph.stub_ads():
            node = proto.network.node(ad.ad_id)
            for per_nbr_keys in node._advertised.values():
                for dest, _qos, _cls in per_nbr_keys:
                    assert dest == ad.ad_id


class TestSourceScopes:
    @staticmethod
    def _scoped_scenario():
        """AD 1 carries only source 0's traffic; AD 2 carries anyone's.

        Topology: sources 0 and 4 both hang off transit 1 and transit 2,
        destination 3 reachable through either transit.
        """
        g = mk_graph(
            [(0, "Cs"), (4, "Cs"), (1, "Rt"), (2, "Rt"), (3, "Cs")],
            [(0, 1), (0, 2), (4, 1), (4, 2), (1, 3), (2, 3)],
            metrics={
                (0, 1): {"delay": 1.0},
                (1, 3): {"delay": 1.0},
                (0, 2): {"delay": 5.0},
                (2, 3): {"delay": 5.0},
                (4, 1): {"delay": 1.0},
                (4, 2): {"delay": 5.0},
            },
        )
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, sources=ADSet.of([0])))
        db.add_term(PolicyTerm(owner=2))
        return g, db

    def test_scope_respected_at_source(self):
        g, db = self._scoped_scenario()
        proto = IDRPProtocol(g, db)
        proto.converge()
        # Source 0 may use the cheap transit 1.
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 3)
        # Source 4 is excluded from transit 1; via the scoped update it
        # must either use transit 2 or nothing -- never an illegal route.
        path4 = proto.find_route(FlowSpec(4, 3))
        if path4 is not None:
            assert is_legal_path(g, db, path4, FlowSpec(4, 3))

    def test_single_route_starves_sources(self):
        """The Section 5.2 pathology: one advertised route per dest means
        a source can starve even though a legal route exists."""
        g, db = self._scoped_scenario()
        proto = IDRPProtocol(g, db)
        proto.converge()
        from repro.core.evaluation import legal_route_exists

        assert legal_route_exists(g, db, FlowSpec(4, 3)) is True
        found = proto.find_route(FlowSpec(4, 3))
        # Node 4 selected the cheaper route via 1 (scoped to source 0);
        # since 4 is not in its scope, 4 has no usable route.
        assert found is None

    def test_bgp2_cannot_express_scopes(self):
        """BGP-2 drops the scope attribute; the same scenario now yields
        an illegal route for source 4 (it cannot know it is excluded)."""
        g, db = self._scoped_scenario()
        proto = BGP2Protocol(g, db)
        proto.converge()
        path = proto.find_route(FlowSpec(4, 3))
        # BGP2 transit enforcement at AD 1 drops the packet mid-path or
        # the route is illegal -- either way source 4 is worse off and
        # cannot tell why.
        if path is not None:
            assert not is_legal_path(g, db, path, FlowSpec(4, 3))


class TestFailureResponse:
    def test_reroute_after_failure(self):
        g = diamond_graph()
        proto = IDRPProtocol(g, open_db(g))
        proto.converge()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 3)
        proto.network.set_link_status(1, 3, up=False)
        proto.network.run()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 2, 3)

    def test_withdrawal_propagates(self):
        g = line_graph(4)
        proto = IDRPProtocol(g, open_db(g))
        proto.converge()
        proto.network.set_link_status(2, 3, up=False)
        proto.network.run()
        assert proto.find_route(FlowSpec(0, 3)) is None
        node0 = proto.network.node(0)
        assert node0.entry_for(3, FlowSpec(0, 3).qos) is None

    def test_repair_restores(self):
        g = diamond_graph()
        proto = IDRPProtocol(g, open_db(g))
        proto.converge()
        proto.network.set_link_status(1, 3, up=False)
        proto.network.run()
        proto.network.set_link_status(1, 3, up=True)
        proto.network.run()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 3)


class TestTransitEnforcement:
    def test_transit_checks_own_policy_on_actual_hops(self):
        # AD 1 only accepts traffic entering from AD 0.
        g = mk_graph(
            [(0, "Cs"), (4, "Cs"), (1, "Rt"), (3, "Cs")],
            [(0, 1), (4, 1), (1, 3)],
        )
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, prev_ads=ADSet.of([0])))
        proto = IDRPProtocol(g, db)
        proto.converge()
        assert proto.find_route(FlowSpec(0, 3)) == (0, 1, 3)
        # From 4, AD 1's own enforcement refuses to forward.
        assert proto.find_route(FlowSpec(4, 3)) is None


class TestGranularityPressure:
    def test_availability_drops_as_policies_get_source_specific(self, gen_graph):
        """Section 5.2.1: as policy granularity rises, the single
        advertised route serves fewer sources."""
        from repro.core.evaluation import evaluate_availability, sample_flows

        flows = sample_flows(gen_graph, 30, seed=3)
        coarse = source_class_policies(gen_graph, 1, refusal_prob=0.35, seed=2)
        fine = source_class_policies(gen_graph, 8, refusal_prob=0.35, seed=2)
        avail = {}
        for scen in (coarse, fine):
            proto = IDRPProtocol(gen_graph.copy(), scen.policies)
            proto.converge()
            rep = evaluate_availability(
                proto.graph, proto.policies, flows, proto.find_route
            )
            avail[scen.name] = rep.availability
        assert avail[fine.name] <= avail[coarse.name]
