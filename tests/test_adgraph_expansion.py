"""Tests for the router-level expansion (E9's substrate)."""

import networkx as nx
import pytest

from repro.adgraph.ad import Level
from repro.adgraph.expansion import (
    DEFAULT_ROUTERS_PER_LEVEL,
    ExpansionConfig,
    RouterExpansion,
)
from repro.adgraph.generator import TopologyConfig, generate_internet
from tests.helpers import diamond_graph


@pytest.fixture
def expansion(hierarchy):
    return RouterExpansion(hierarchy)


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ExpansionConfig(internal_hop_delay=-1.0)
        with pytest.raises(ValueError):
            ExpansionConfig(routers_per_level={Level.CAMPUS: 0})


class TestStructure:
    def test_router_counts_by_level(self, hierarchy, expansion):
        assert expansion.router_count(0) == DEFAULT_ROUTERS_PER_LEVEL[Level.BACKBONE]
        assert expansion.router_count(3) == DEFAULT_ROUTERS_PER_LEVEL[Level.CAMPUS]
        total = expansion.total_routers()
        assert expansion.router_graph.number_of_nodes() == total

    def test_internal_rings_connected(self, expansion):
        for ad_id in expansion.ad_graph.ad_ids():
            routers = [
                n for n in expansion.router_graph.nodes if n[0] == ad_id
            ]
            sub = expansion.router_graph.subgraph(routers)
            assert nx.is_connected(sub)

    def test_expanded_graph_connected(self, expansion):
        assert nx.is_connected(expansion.router_graph)

    def test_border_routers_deterministic_and_distinct(self, expansion):
        # Backbone 0 has several neighbours; they should not all share
        # one border router.
        nbrs = expansion.ad_graph.neighbors(0)
        borders = {expansion.border_router(0, n) for n in nbrs}
        assert len(borders) > 1
        assert expansion.border_router(0, nbrs[0]) == expansion.border_router(
            0, nbrs[0]
        )

    def test_inter_ad_links_present(self, expansion):
        for link in expansion.ad_graph.links():
            u = expansion.border_router(link.a, link.b)
            v = expansion.border_router(link.b, link.a)
            assert expansion.router_graph.has_edge(u, v)
            assert expansion.router_graph[u][v]["delay"] == link.metric("delay")

    def test_down_links_excluded(self, hierarchy):
        hierarchy.set_link_status(0, 1, up=False)
        expansion = RouterExpansion(hierarchy)
        u = expansion.border_router(0, 1)
        v = expansion.border_router(1, 0)
        assert not expansion.router_graph.has_edge(u, v)


class TestCosts:
    def test_stretch_at_least_one(self, expansion):
        stretch = expansion.stretch((3, 1, 0, 2, 5))
        assert stretch is not None and stretch >= 1.0

    def test_trivial_paths(self, expansion):
        assert expansion.stretch((3,)) == 1.0
        assert expansion.realized_cost((3,)) == 0.0
        assert expansion.realized_cost(()) is None

    def test_corridor_enforces_ad_sequence(self, expansion):
        # The corridor for 3->1->4 must not contain backbone routers.
        corridor = expansion.corridor((3, 1, 4))
        assert all(node[0] in {3, 1, 4} for node in corridor.nodes)

    def test_detour_route_costs_more(self):
        g = diamond_graph()
        exp = RouterExpansion(g)
        direct = exp.realized_cost((0, 1, 3))
        detour = exp.realized_cost((0, 2, 3))
        assert detour > direct

    def test_optimal_cost_none_when_partitioned(self, hierarchy):
        for link in list(hierarchy.links_of(3)):
            hierarchy.set_link_status(link.a, link.b, up=False)
        exp = RouterExpansion(hierarchy)
        assert exp.optimal_cost(3, 5) is None
        assert exp.stretch((3, 1, 0, 2, 5)) is None

    def test_information_volume(self, expansion):
        ad_level, router_level = expansion.information_volume()
        assert ad_level == expansion.ad_graph.num_ads + 2 * expansion.ad_graph.num_links
        assert router_level > ad_level


class TestOnGeneratedInternet:
    def test_stretch_reasonable_across_flows(self):
        import random

        g = generate_internet(TopologyConfig(seed=33))
        exp = RouterExpansion(g)
        from repro.core.synthesis import synthesize_route
        from repro.policy.flows import FlowSpec
        from repro.policy.generators import open_policies

        db = open_policies(g).policies
        rng = random.Random(33)
        stubs = [a.ad_id for a in g.stub_ads()]
        checked = 0
        for _ in range(20):
            src, dst = rng.sample(stubs, 2)
            route = synthesize_route(g, db, FlowSpec(src, dst))
            if route is None:
                continue
            stretch = exp.stretch(route.path)
            assert stretch is not None and 1.0 <= stretch < 3.0
            checked += 1
        assert checked > 5
