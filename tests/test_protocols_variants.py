"""Tests for the four dismissed design points (Section 5.5)."""

import pytest

from repro.adgraph.partial_order import PartialOrder
from repro.core.evaluation import sample_flows
from repro.policy.flows import FlowSpec
from repro.policy.generators import hierarchical_policies
from repro.policy.selection import RouteSelectionPolicy
from repro.protocols.variants import (
    DVSourceTermsProtocol,
    DVSourceTopologyProtocol,
    LSHbHTopologyProtocol,
    LSSourceTopologyProtocol,
    valley_free_shortest_path,
)


class TestValleyFreeDijkstra:
    def test_simple_hierarchy_path(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        path = valley_free_shortest_path(hierarchy, order, 3, 5)
        assert path is not None
        assert order.path_is_valid(path)
        assert path[0] == 3 and path[-1] == 5

    def test_trivial(self, hierarchy):
        order = PartialOrder.from_hierarchy(hierarchy)
        assert valley_free_shortest_path(hierarchy, order, 3, 3) == (3,)

    def test_result_is_simple_path(self, gen_graph):
        order = PartialOrder.from_hierarchy(gen_graph)
        ids = gen_graph.ad_ids()
        for src in ids[::4]:
            for dst in ids[::5]:
                if src == dst:
                    continue
                path = valley_free_shortest_path(gen_graph, order, src, dst)
                if path is not None:
                    assert len(set(path)) == len(path)
                    assert order.path_is_valid(path)

    def test_unreachable_when_valley_required(self, hierarchy):
        """If the only physical connection would require a valley, the
        search correctly returns None."""
        order = PartialOrder.from_hierarchy(hierarchy)
        hierarchy.set_link_status(0, 1, up=False)
        hierarchy.set_link_status(1, 2, up=False)
        # 4 now reaches the world only via 1; 1 reaches 0 only through
        # 3's bypass (1->3 down, 3->0 up): a valley.  No valid path.
        assert valley_free_shortest_path(hierarchy, order, 4, 5) is None


class TestLSTopologyVariants:
    @pytest.mark.parametrize(
        "cls", [LSHbHTopologyProtocol, LSSourceTopologyProtocol]
    )
    def test_routes_valley_free(self, cls, gen_graph, gen_policies):
        proto = cls(gen_graph, gen_policies)
        proto.converge()
        for flow in sample_flows(gen_graph, 20, seed=3):
            path = proto.find_route(flow)
            if path is not None and len(path) > 1:
                assert proto.order.path_is_valid(path)

    def test_hbh_and_source_agree(self, gen_graph, gen_policies):
        """Both variants compute the same valley-free route; only the
        decision location differs."""
        hbh = LSHbHTopologyProtocol(gen_graph.copy(), gen_policies)
        src = LSSourceTopologyProtocol(gen_graph.copy(), gen_policies)
        hbh.converge()
        src.converge()
        for flow in sample_flows(gen_graph, 15, seed=4):
            assert hbh.find_route(flow) == src.find_route(flow)

    def test_source_variant_honours_selection(self, gen_graph, gen_policies):
        proto = LSSourceTopologyProtocol(gen_graph, gen_policies)
        proto.converge()
        flows = sample_flows(gen_graph, 10, seed=5)
        flow = next(
            f
            for f in flows
            if (p := proto.find_route(f)) is not None and len(p) > 2
        )
        # A one-hop budget cannot fit the multi-hop route: the source
        # rejects it rather than forwarding blind.
        sel = RouteSelectionPolicy(max_hops=1)
        assert proto.source_route(flow, sel) is None


class TestDVSourceVariants:
    def test_pv_src_source_routes_from_path_vector(self, hierarchy):
        db = hierarchical_policies(hierarchy).policies
        proto = DVSourceTermsProtocol(hierarchy, db)
        proto.converge()
        path = proto.find_route(FlowSpec(3, 4))
        assert path == (3, 1, 4)

    def test_pv_src_rejects_route_violating_selection(self, hierarchy):
        db = hierarchical_policies(hierarchy).policies
        proto = DVSourceTermsProtocol(hierarchy, db)
        proto.converge()
        sel = RouteSelectionPolicy(avoid_ads=frozenset({1}))
        # The advertised route to 4 goes through 1; the source can reject
        # it (source routing) but has no alternative (path vector):
        # exactly the "little advantage" of Section 5.5.2.
        assert proto.source_route(FlowSpec(3, 4), sel) is None

    def test_topo_vector_paths_valley_free(self, gen_graph, gen_policies):
        proto = DVSourceTopologyProtocol(gen_graph, gen_policies)
        proto.converge()
        for flow in sample_flows(gen_graph, 20, seed=6):
            path = proto.find_route(flow)
            if path is not None and len(path) > 1:
                assert proto.order.path_is_valid(path)
                assert len(set(path)) == len(path)

    def test_topo_vector_stubs_never_transit(self, gen_graph, gen_policies):
        proto = DVSourceTopologyProtocol(gen_graph, gen_policies)
        proto.converge()
        for flow in sample_flows(gen_graph, 20, seed=7):
            path = proto.find_route(flow)
            if path is not None:
                for transit in path[1:-1]:
                    assert gen_graph.ad(transit).kind.may_transit
