"""Unit tests for InterADGraph."""

import pytest

from repro.adgraph.ad import AD, ADKind, Level, LinkKind
from repro.adgraph.graph import InterADGraph
from tests.helpers import mk_graph


class TestNodeManagement:
    def test_add_and_lookup(self):
        g = InterADGraph()
        ad = g.add_ad(AD(1, "x", Level.CAMPUS, ADKind.STUB))
        assert g.ad(1) is ad
        assert g.has_ad(1)
        assert 1 in g
        assert g.num_ads == 1

    def test_duplicate_ad_rejected(self):
        g = InterADGraph()
        g.add_ad(AD(1, "x", Level.CAMPUS, ADKind.STUB))
        with pytest.raises(ValueError):
            g.add_ad(AD(1, "y", Level.CAMPUS, ADKind.STUB))

    def test_ads_sorted_by_id(self):
        g = mk_graph([(3, "Cs"), (1, "Bt"), (2, "Rt")], [])
        assert [a.ad_id for a in g.ads()] == [1, 2, 3]
        assert g.ad_ids() == [1, 2, 3]

    def test_kind_filters(self, hierarchy):
        transit_ids = {a.ad_id for a in hierarchy.transit_ads()}
        stub_ids = {a.ad_id for a in hierarchy.stub_ads()}
        assert transit_ids == {0, 1, 2}
        assert stub_ids == {3, 4, 5, 6}
        assert transit_ids | stub_ids == set(hierarchy.ad_ids())


class TestLinkManagement:
    def test_link_requires_known_endpoints(self):
        g = mk_graph([(1, "Cs")], [])
        with pytest.raises(ValueError):
            g.connect(1, 99)

    def test_duplicate_link_rejected(self):
        g = mk_graph([(1, "Cs"), (2, "Cs")], [(1, 2)])
        with pytest.raises(ValueError):
            g.connect(2, 1)

    def test_link_lookup_order_insensitive(self):
        g = mk_graph([(1, "Cs"), (2, "Cs")], [(1, 2)])
        assert g.link(1, 2) is g.link(2, 1)
        assert g.has_link(2, 1)

    def test_neighbors_exclude_down_links(self):
        g = mk_graph([(1, "Rt"), (2, "Rt"), (3, "Rt")], [(1, 2), (1, 3)])
        assert g.neighbors(1) == [2, 3]
        g.set_link_status(1, 2, up=False)
        assert g.neighbors(1) == [3]
        assert g.neighbors(1, include_down=True) == [2, 3]
        assert g.degree(1) == 1

    def test_links_filtering(self):
        g = mk_graph([(1, "Rt"), (2, "Rt"), (3, "Rt")], [(1, 2), (2, 3)])
        g.set_link_status(1, 2, up=False)
        assert len(g.links()) == 2
        assert len(g.links(include_down=False)) == 1


class TestAnalysis:
    def test_connectivity(self, hierarchy):
        assert hierarchy.is_connected()
        g = mk_graph([(1, "Cs"), (2, "Cs")], [])
        assert not g.is_connected()

    def test_connectivity_respects_down_links(self):
        g = mk_graph([(1, "Cs"), (2, "Cs")], [(1, 2)])
        assert g.is_connected()
        g.set_link_status(1, 2, up=False)
        assert not g.is_connected(live_only=True)
        assert g.is_connected(live_only=False)

    def test_histograms(self, hierarchy):
        levels = hierarchy.level_counts()
        assert levels[Level.BACKBONE] == 1
        assert levels[Level.REGIONAL] == 2
        assert levels[Level.CAMPUS] == 4
        kinds = hierarchy.kind_counts()
        assert kinds[ADKind.STUB] == 4
        links = hierarchy.link_kind_counts()
        assert links[LinkKind.BYPASS] == 1
        assert links[LinkKind.LATERAL] == 1

    def test_nx_export_carries_metrics(self, diamond):
        g = diamond.nx_graph()
        assert g[0][1]["delay"] == 1.0
        assert g[0][2]["delay"] == 5.0

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.set_link_status(0, 1, up=False)
        assert diamond.link(0, 1).up
        assert not clone.link(0, 1).up
        assert clone.num_ads == diamond.num_ads
        assert clone.num_links == diamond.num_links

    def test_empty_graph_is_connected(self):
        assert InterADGraph().is_connected()
