"""Tests for the Section 5.2/Section 6 extensions: multi-route IDRP,
tree-scoped flooding, and bounded PG caches."""

import pytest

from repro.adgraph.trees import spanning_tree_links
from repro.core.evaluation import evaluate_availability, sample_flows
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import source_class_policies
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.protocols.idrp import IDRPProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.protocols.orwg.gateway import PolicyGatewayCache
from repro.protocols.orwg.messages import Handle
from tests.helpers import line_graph, mk_graph, open_db


class TestSpanningTreeLinks:
    def test_tree_size_and_connectivity(self, hierarchy):
        tree = spanning_tree_links(hierarchy)
        assert len(tree) == hierarchy.num_ads - 1
        # Every tree key is a real link.
        for a, b in tree:
            assert hierarchy.has_link(a, b)

    def test_deterministic(self, gen_graph):
        assert spanning_tree_links(gen_graph) == spanning_tree_links(gen_graph)

    def test_forest_on_disconnected_graph(self):
        g = mk_graph([(0, "Cs"), (1, "Cs"), (2, "Cs")], [(0, 1)])
        assert spanning_tree_links(g) == frozenset({(0, 1)})


class TestMultiRouteIDRP:
    @staticmethod
    def _scenario():
        """The Section 5.2 starvation scenario from test_protocols_idrp:
        source 4 starves under single-route IDRP."""
        g = mk_graph(
            [(0, "Cs"), (4, "Cs"), (1, "Rt"), (2, "Rt"), (3, "Cs")],
            [(0, 1), (0, 2), (4, 1), (4, 2), (1, 3), (2, 3)],
            metrics={
                (0, 1): {"delay": 1.0},
                (1, 3): {"delay": 1.0},
                (0, 2): {"delay": 5.0},
                (2, 3): {"delay": 5.0},
                (4, 1): {"delay": 1.0},
                (4, 2): {"delay": 5.0},
            },
        )
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, sources=ADSet.of([0])))
        db.add_term(PolicyTerm(owner=2))
        return g, db

    def test_multiple_classes_rescue_starved_source(self):
        g, db = self._scenario()
        single = IDRPProtocol(g.copy(), db.copy(), route_classes=1)
        single.converge()
        assert single.find_route(FlowSpec(4, 3)) is None  # starved

        multi = IDRPProtocol(g.copy(), db.copy(), route_classes=2)
        multi.converge()
        # ADs 0 (class 0) and 4 (class 0)?  class = ad_id % 2: 0->0, 4->0.
        # Both sources share a class here; use 5 classes so they split.
        multi5 = IDRPProtocol(g.copy(), db.copy(), route_classes=5)
        multi5.converge()
        path = multi5.find_route(FlowSpec(4, 3))
        assert path == (4, 2, 3)
        assert multi5.find_route(FlowSpec(0, 3)) == (0, 1, 3)

    def test_rib_replication_cost(self):
        """The paper's cost: tables replicate per class."""
        g, db = self._scenario()
        single = IDRPProtocol(g.copy(), db.copy(), route_classes=1)
        multi = IDRPProtocol(g.copy(), db.copy(), route_classes=4)
        single.converge()
        multi.converge()
        assert multi.total_rib_size() > 2 * single.total_rib_size()

    def test_availability_recovers_with_classes(self, gen_graph):
        scen = source_class_policies(gen_graph, 6, refusal_prob=0.3, seed=5)
        flows = sample_flows(gen_graph, 30, seed=6)
        availability = {}
        for classes in (1, 6):
            proto = IDRPProtocol(
                gen_graph.copy(), scen.policies.copy(), route_classes=classes
            )
            proto.converge()
            rep = evaluate_availability(
                proto.graph, proto.policies, flows, proto.find_route
            )
            availability[classes] = rep.availability
            assert rep.n_illegal == 0
        assert availability[6] >= availability[1]

    def test_invalid_route_classes(self, gen_graph, gen_policies):
        with pytest.raises(ValueError):
            IDRPProtocol(gen_graph, gen_policies, route_classes=0)


class TestTreeFlooding:
    def test_initial_convergence_cheaper(self, gen_graph, gen_policies):
        full = ORWGProtocol(gen_graph.copy(), gen_policies.copy(), flooding="full")
        tree = ORWGProtocol(gen_graph.copy(), gen_policies.copy(), flooding="tree")
        full_res = full.converge()
        tree_res = tree.converge()
        assert tree_res.messages < full_res.messages

    def test_lsdbs_still_synchronised(self, gen_graph, gen_policies):
        proto = ORWGProtocol(gen_graph, gen_policies, flooding="tree")
        proto.converge()
        dbs = [proto.network.node(a).lsdb for a in gen_graph.ad_ids()]
        for db in dbs[1:]:
            assert db == dbs[0]

    def test_tree_link_failure_desynchronises(self, gen_graph, gen_policies):
        """The robustness cost: a failed tree link silences the flood
        across the cut even though physical connectivity remains."""
        proto = ORWGProtocol(gen_graph, gen_policies, flooding="tree")
        proto.converge()
        tree = spanning_tree_links(proto.graph)
        # Pick a tree link whose removal keeps the graph connected.
        from repro.adgraph.failures import safe_failure_candidates

        candidates = [k for k in safe_failure_candidates(proto.graph) if k in tree]
        if not candidates:
            pytest.skip("no redundant tree link in this topology")
        a, b = candidates[0]
        proto.network.set_link_status(a, b, up=False)
        proto.network.run()
        versions = {
            ad: proto.network.node(ad).lsdb.get(a)
            for ad in proto.graph.ad_ids()
        }
        seqs = {lsa.seq for lsa in versions.values() if lsa is not None}
        # At least two different views of AD a's LSA persist: stale ones
        # behind the cut, fresh ones near it.
        assert len(seqs) > 1

    def test_unknown_strategy_rejected(self, gen_graph, gen_policies):
        with pytest.raises(ValueError):
            ORWGProtocol(gen_graph, gen_policies, flooding="gossip")


class TestBoundedPGCache:
    def test_limit_validated(self):
        with pytest.raises(ValueError):
            PolicyGatewayCache(1, limit=0)

    def test_lru_eviction(self):
        from repro.protocols.orwg.gateway import PGCacheEntry

        cache = PolicyGatewayCache(1, limit=2)
        entries = {}
        for i in range(3):
            h = Handle(0, i)
            entries[i] = PGCacheEntry(
                flow=FlowSpec(0, 9), prev=0, next=9, term_ref=None, policy_version=0
            )
            cache.install(h, entries[i])
        assert cache.size == 2
        assert cache.evictions == 1
        assert cache.lookup(Handle(0, 0)) is None  # oldest evicted
        assert cache.lookup(Handle(0, 2)) is not None

    def test_lookup_refreshes_recency(self):
        from repro.protocols.orwg.gateway import PGCacheEntry

        cache = PolicyGatewayCache(1, limit=2)
        mk = lambda: PGCacheEntry(
            flow=FlowSpec(0, 9), prev=0, next=9, term_ref=None, policy_version=0
        )
        cache.install(Handle(0, 0), mk())
        cache.install(Handle(0, 1), mk())
        cache.lookup(Handle(0, 0))  # refresh 0
        cache.install(Handle(0, 2), mk())  # evicts 1, not 0
        assert cache.lookup(Handle(0, 0)) is not None
        assert cache.lookup(Handle(0, 1)) is None

    def test_small_cache_drops_excess_routes(self):
        """Transit PGs with tiny caches lose handles under concurrency;
        evicted routes stop delivering."""
        g = line_graph(3)
        limited = ORWGProtocol(g, open_db(g), pg_cache_limit=2)
        limited.converge()
        attempts = [limited.open_route(FlowSpec(0, 2)) for _ in range(5)]
        limited.network.run()
        assert all(a.established for a in attempts)
        for a in attempts:
            limited.send_data(a, packets=1)
        limited.network.run()
        delivered = sum(limited.delivered(a) for a in attempts)
        assert delivered < 5
        transit = limited.network.node(1)
        assert transit.pg.evictions > 0

    def test_unlimited_cache_keeps_everything(self):
        g = line_graph(3)
        proto = ORWGProtocol(g, open_db(g))
        proto.converge()
        attempts = [proto.open_route(FlowSpec(0, 2)) for _ in range(5)]
        proto.network.run()
        for a in attempts:
            proto.send_data(a, packets=1)
        proto.network.run()
        assert sum(proto.delivered(a) for a in attempts) == 5


class TestRouteTTL:
    def test_expired_route_rejected_and_refreshable(self):
        g = line_graph(3)
        proto = ORWGProtocol(g, open_db(g), route_ttl=50.0)
        proto.converge()
        attempt = proto.open_route(FlowSpec(0, 2))
        proto.network.run()
        assert attempt.established
        # Within the lifetime: packets flow.
        proto.send_data(attempt, packets=2)
        proto.network.run()
        assert proto.delivered(attempt) == 2
        # Push simulated time past the lifetime with an idle marker event.
        proto.network.sim.schedule(100.0, lambda: None)
        proto.network.run()
        proto.send_data(attempt, packets=1)
        proto.network.run()
        assert proto.delivered(attempt) == 2  # expired at the transit PG
        assert attempt.state == "failed"
        assert "expired" in attempt.reason
        # A refresh setup restores service.
        retry = proto.open_route(FlowSpec(0, 2))
        proto.network.run()
        assert retry.established
        proto.send_data(retry, packets=1)
        proto.network.run()
        assert proto.delivered(retry) == 1

    def test_no_ttl_means_immortal(self):
        g = line_graph(3)
        proto = ORWGProtocol(g, open_db(g))
        proto.converge()
        attempt = proto.open_route(FlowSpec(0, 2))
        proto.network.run()
        proto.network.sim.schedule(1_000_000.0, lambda: None)
        proto.network.run()
        proto.send_data(attempt, packets=1)
        proto.network.run()
        assert proto.delivered(attempt) == 1

    def test_invalid_ttl_rejected(self):
        g = line_graph(3)
        with pytest.raises(ValueError):
            ORWGProtocol(g, open_db(g), route_ttl=0.0)


class TestHierarchicalRouteServer:
    def test_same_availability_as_flat(self, gen_graph, gen_restricted):
        from repro.core.evaluation import evaluate_availability, sample_flows

        flat = ORWGProtocol(gen_graph.copy(), gen_restricted.copy())
        hier = ORWGProtocol(
            gen_graph.copy(), gen_restricted.copy(), synthesis="hierarchical"
        )
        flat.converge()
        hier.converge()
        flows = sample_flows(gen_graph, 25, seed=44)
        flat_rep = evaluate_availability(
            flat.graph, flat.policies, flows, flat.find_route
        )
        hier_rep = evaluate_availability(
            hier.graph, hier.policies, flows, hier.find_route
        )
        assert hier_rep.availability == flat_rep.availability == 1.0
        assert hier_rep.n_illegal == 0

    def test_hierarchical_server_prunes_search(self, gen_graph, gen_restricted):
        from repro.core.evaluation import sample_flows

        hier = ORWGProtocol(
            gen_graph, gen_restricted, synthesis="hierarchical"
        )
        hier.converge()
        flows = [
            f
            for f in sample_flows(gen_graph, 25, seed=45)
            if hier.find_route(f) is not None
        ]
        node = hier.network.node(flows[0].src)
        server = node.hierarchical_server()
        assert server.stats.requests > 0
        assert server.stats.hit_ratio > 0.5

    def test_setup_works_with_hierarchical_routes(self, gen_graph, gen_restricted):
        from repro.core.evaluation import sample_flows

        proto = ORWGProtocol(
            gen_graph, gen_restricted, synthesis="hierarchical"
        )
        proto.converge()
        flow = next(
            f
            for f in sample_flows(gen_graph, 20, seed=46)
            if proto.find_route(f) is not None
        )
        attempt = proto.open_route(flow)
        proto.network.run()
        assert attempt.established
        proto.send_data(attempt, packets=2)
        proto.network.run()
        assert proto.delivered(attempt) == 2

    def test_unknown_synthesis_rejected(self, gen_graph, gen_policies):
        with pytest.raises(ValueError):
            ORWGProtocol(gen_graph, gen_policies, synthesis="magic")

    def test_levels_flooded_for_partitioning(self, gen_graph, gen_policies):
        proto = ORWGProtocol(gen_graph, gen_policies)
        proto.converge()
        node = proto.network.node(gen_graph.ad_ids()[0])
        view, _ = node.local_view()
        for ad_id in gen_graph.ad_ids():
            assert view.ad(ad_id).level == gen_graph.ad(ad_id).level
