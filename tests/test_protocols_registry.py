"""Tests for the design-point registry."""

import pytest

from repro.core.design_space import enumerate_design_space
from repro.policy.qos import QOS
from repro.protocols.base import ForwardingMode
from repro.protocols.registry import (
    PROTOCOL_FOR_POINT,
    available_protocols,
    design_point_of,
    make_protocol,
    protocol_for,
)
from tests.helpers import open_db, small_hierarchy


def test_every_design_point_has_an_implementation():
    assert set(PROTOCOL_FOR_POINT) == set(enumerate_design_space())


def test_implementations_claim_their_point():
    for point, factory in PROTOCOL_FOR_POINT.items():
        assert factory.design_point == point


def test_forwarding_mode_matches_axis():
    for point, factory in PROTOCOL_FOR_POINT.items():
        expected = (
            ForwardingMode.SOURCE
            if point.location.short == "Src"
            else ForwardingMode.HOP_BY_HOP
        )
        assert factory.mode is expected


def test_instantiation_and_convergence():
    g = small_hierarchy()
    db = open_db(g)
    for point in enumerate_design_space():
        proto = protocol_for(point, g.copy(), db.copy())
        result = proto.converge()
        assert result.messages > 0, f"{point.label} never exchanged messages"


class TestMakeProtocol:
    def test_by_point_and_by_name_agree(self):
        g = small_hierarchy()
        db = open_db(g)
        for point in enumerate_design_space():
            by_point = make_protocol(point, g.copy(), db.copy())
            by_name = make_protocol(by_point.name, g.copy(), db.copy())
            assert type(by_point) is type(by_name)
            assert design_point_of(by_point.name) == point

    def test_every_registered_name_constructs_and_converges(self):
        g = small_hierarchy()
        db = open_db(g)
        for name in available_protocols():
            proto = make_protocol(name, g.copy(), db.copy())
            assert proto.name == name
            assert proto.converge().messages > 0, f"{name} never exchanged"

    def test_covers_eight_points_plus_baselines(self):
        names = available_protocols()
        assert len(names) == 12
        for baseline in ("egp", "naive-dv", "plain-ls", "bgp2"):
            assert baseline in names
            assert design_point_of(baseline) is None

    def test_unknown_name_raises_with_listing(self):
        g = small_hierarchy()
        with pytest.raises(ValueError, match="unknown protocol 'ospf'.*orwg"):
            make_protocol("ospf", g, open_db(g))

    def test_options_forwarded_to_constructor(self):
        g = small_hierarchy()
        db = open_db(g)
        proto = make_protocol("naive-dv", g.copy(), db.copy(), infinity=9)
        assert proto.infinity == 9

    def test_qos_classes_option_normalized_from_strings(self):
        g = small_hierarchy()
        db = open_db(g)
        proto = make_protocol(
            "ecma", g.copy(), db.copy(), qos_classes=("default",)
        )
        assert proto.qos_classes == frozenset({QOS.DEFAULT})


class TestBuildGuard:
    def test_apply_link_status_before_build_raises(self):
        g = small_hierarchy()
        proto = make_protocol("idrp", g, open_db(g))
        with pytest.raises(RuntimeError, match="build\\(\\)"):
            proto.apply_link_status(0, 1, False)

    def test_egp_guard_too(self):
        g = small_hierarchy()
        proto = make_protocol("egp", g, open_db(g))
        with pytest.raises(RuntimeError, match="build\\(\\)"):
            proto.apply_link_status(0, 1, False)
