"""Tests for the design-point registry."""

from repro.core.design_space import enumerate_design_space
from repro.protocols.base import ForwardingMode
from repro.protocols.registry import PROTOCOL_FOR_POINT, protocol_for
from tests.helpers import open_db, small_hierarchy


def test_every_design_point_has_an_implementation():
    assert set(PROTOCOL_FOR_POINT) == set(enumerate_design_space())


def test_implementations_claim_their_point():
    for point, factory in PROTOCOL_FOR_POINT.items():
        assert factory.design_point == point


def test_forwarding_mode_matches_axis():
    for point, factory in PROTOCOL_FOR_POINT.items():
        expected = (
            ForwardingMode.SOURCE
            if point.location.short == "Src"
            else ForwardingMode.HOP_BY_HOP
        )
        assert factory.mode is expected


def test_instantiation_and_convergence():
    g = small_hierarchy()
    db = open_db(g)
    for point in enumerate_design_space():
        proto = protocol_for(point, g.copy(), db.copy())
        result = proto.converge()
        assert result.messages > 0, f"{point.label} never exchanged messages"
