"""Cross-protocol integration tests: the invariants every architecture
must satisfy on a full generated internet, plus cross-cutting paper
claims that need several protocols side by side."""

import pytest

from repro.adgraph.failures import random_failure_plan
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.core.evaluation import evaluate_availability, sample_flows
from repro.policy.generators import restricted_policies
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.egp import EGPProtocol
from repro.protocols.idrp import BGP2Protocol, IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.protocols.spf import PlainLinkStateProtocol
from repro.protocols.variants import (
    DVSourceTermsProtocol,
    DVSourceTopologyProtocol,
    LSHbHTopologyProtocol,
    LSSourceTopologyProtocol,
)

ALL_PROTOCOLS = [
    DistanceVectorProtocol,
    EGPProtocol,
    PlainLinkStateProtocol,
    ECMAProtocol,
    IDRPProtocol,
    BGP2Protocol,
    LinkStateHopByHopProtocol,
    ORWGProtocol,
    LSHbHTopologyProtocol,
    LSSourceTopologyProtocol,
    DVSourceTopologyProtocol,
    DVSourceTermsProtocol,
]


@pytest.fixture(scope="module")
def setting():
    graph = generate_internet(TopologyConfig(seed=21, lateral_prob=0.4))
    policies = restricted_policies(graph, 0.3, seed=21).policies
    flows = sample_flows(graph, 30, seed=22)
    return graph, policies, flows


@pytest.mark.parametrize("cls", ALL_PROTOCOLS, ids=lambda c: c.name)
class TestUniversalInvariants:
    def test_quiesces_and_serves_routes(self, cls, setting):
        graph, policies, flows = setting
        proto = cls(graph.copy(), policies.copy())
        result = proto.converge()
        assert result.messages > 0
        found = sum(proto.find_route(f) is not None for f in flows)
        assert found > 0, f"{proto.name} found no routes at all"

    def test_routes_are_loop_free_walks_over_live_links(self, cls, setting):
        graph, policies, flows = setting
        proto = cls(graph.copy(), policies.copy())
        proto.converge()
        for flow in flows:
            path = proto.find_route(flow)
            if path is None:
                continue
            assert path[0] == flow.src and path[-1] == flow.dst
            assert len(set(path)) == len(path), f"{proto.name} looped: {path}"
            for a, b in zip(path, path[1:]):
                assert proto.graph.has_link(a, b), (proto.name, path)

    def test_deterministic_across_runs(self, cls, setting):
        graph, policies, flows = setting

        def run():
            proto = cls(graph.copy(), policies.copy())
            res = proto.converge()
            routes = tuple(proto.find_route(f) for f in flows[:10])
            return res.messages, res.bytes, routes

        assert run() == run()

    def test_survives_failure_and_stays_loop_free(self, cls, setting):
        graph, policies, flows = setting
        proto = cls(graph.copy(), policies.copy())
        proto.converge()
        plan = random_failure_plan(proto.graph, count=2, seed=5)
        for ev in plan:
            proto.apply_link_status(ev.a, ev.b, ev.up)
            proto.network.run()
        for flow in flows[:15]:
            path = proto.find_route(flow)
            if path is not None:
                assert len(set(path)) == len(path)
                if cls is EGPProtocol:
                    # EGP has no unreachability propagation: stale routes
                    # over dead links are its documented failure mode
                    # (Section 3), so only loop freedom is required.
                    continue
                for a, b in zip(path, path[1:]):
                    link = proto.graph.link(a, b) if proto.graph.has_link(a, b) else None
                    assert link is not None and link.up, (
                        f"{proto.name} routed over dead link {a}-{b}"
                    )


class TestPaperClaims:
    def test_policy_term_ls_protocols_are_exactly_available(self, setting):
        """Sections 5.3/5.4: with flooded PTs, both LS designs discover a
        route iff a legal one exists."""
        graph, policies, flows = setting
        for cls in (LinkStateHopByHopProtocol, ORWGProtocol):
            proto = cls(graph.copy(), policies.copy())
            proto.converge()
            report = evaluate_availability(
                proto.graph, proto.policies, flows, proto.find_route
            )
            assert report.availability == 1.0, cls.name
            assert report.n_illegal == 0, cls.name

    def test_hop_by_hop_dv_weaker_than_ls_source(self, setting):
        """Section 5.2: path-vector advertisement loses legal routes."""
        graph, policies, flows = setting
        idrp = IDRPProtocol(graph.copy(), policies.copy())
        idrp.converge()
        idrp_rep = evaluate_availability(
            idrp.graph, idrp.policies, flows, idrp.find_route
        )
        assert idrp_rep.availability < 1.0

    def test_policy_blind_baselines_produce_illegal_routes(self, setting):
        """Section 3: traditional protocols cannot express policy, so
        their routes violate it."""
        graph, policies, flows = setting
        illegal = {}
        for cls in (DistanceVectorProtocol, PlainLinkStateProtocol):
            proto = cls(graph.copy(), policies.copy())
            proto.converge()
            rep = evaluate_availability(
                proto.graph, proto.policies, flows, proto.find_route
            )
            illegal[cls.name] = rep.n_illegal
        assert all(count > 0 for count in illegal.values()), illegal

    def test_ecma_converges_cheaper_than_naive_dv_after_failure(self, setting):
        """Section 5.1.1: the partial ordering yields rapid convergence;
        naive DV pays the count-to-infinity tax."""
        graph, policies, _ = setting

        def failure_messages(cls, **kw):
            proto = cls(graph.copy(), policies.copy(), **kw)
            proto.converge()
            plan = random_failure_plan(proto.graph, count=3, seed=9)
            total = 0
            for ev in plan:
                before = proto.network.metrics.snapshot(proto.network.sim.now)
                proto.network.set_link_status(ev.a, ev.b, ev.up)
                proto.network.run()
                after = proto.network.metrics.snapshot(proto.network.sim.now)
                total += after.delta(before).total_messages
            return total

        naive = failure_messages(DistanceVectorProtocol, infinity=32)
        ecma = failure_messages(ECMAProtocol)
        assert ecma < naive

    def test_source_routing_relieves_transit_ads(self, setting):
        """Section 5.4: ORWG transit ADs do no route computation; the
        LS-HbH design replicates it at every hop."""
        graph, policies, flows = setting
        hbh = LinkStateHopByHopProtocol(graph.copy(), policies.copy())
        orwg = ORWGProtocol(graph.copy(), policies.copy())
        for proto in (hbh, orwg):
            proto.converge()
            for flow in flows:
                proto.find_route(flow)

        def transit_computations(proto, kind):
            return sum(
                n
                for (ad, k), n in proto.network.metrics.computations.items()
                if k == kind and ad not in {f.src for f in flows}
            )

        hbh_burden = transit_computations(hbh, "policy_route")
        orwg_burden = transit_computations(orwg, "synthesis")
        assert orwg_burden == 0
        assert hbh_burden > 0
