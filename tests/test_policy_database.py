"""Tests for the policy database."""

import pytest

from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm


class TestTermManagement:
    def test_term_ids_assigned_per_owner(self):
        db = PolicyDatabase()
        t0 = db.add_term(PolicyTerm(owner=1))
        t1 = db.add_term(PolicyTerm(owner=1))
        t2 = db.add_term(PolicyTerm(owner=2))
        assert (t0.term_id, t1.term_id, t2.term_id) == (0, 1, 0)

    def test_lookup_by_citation(self):
        db = PolicyDatabase()
        stored = db.add_term(PolicyTerm(owner=3, sources=ADSet.of([1])))
        assert db.term(3, 0) == stored
        with pytest.raises(KeyError):
            db.term(3, 1)
        with pytest.raises(KeyError):
            db.term(4, 0)

    def test_version_bumps_on_mutation(self):
        db = PolicyDatabase()
        v0 = db.version
        db.add_term(PolicyTerm(owner=1))
        assert db.version == v0 + 1
        db.remove_terms(1)
        assert db.version == v0 + 2
        # Removing nothing does not bump.
        v = db.version
        db.remove_terms(99)
        assert db.version == v

    def test_owners_and_all_terms_ordering(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=5))
        db.add_term(PolicyTerm(owner=2))
        db.add_term(PolicyTerm(owner=5))
        assert db.owners() == [2, 5]
        assert [(t.owner, t.term_id) for t in db.all_terms()] == [
            (2, 0),
            (5, 0),
            (5, 1),
        ]
        assert db.num_terms == 3

    def test_init_from_iterable(self):
        db = PolicyDatabase([PolicyTerm(owner=1), PolicyTerm(owner=1)])
        assert db.num_terms == 2

    def test_copy_is_independent(self):
        db = PolicyDatabase([PolicyTerm(owner=1)])
        clone = db.copy()
        clone.add_term(PolicyTerm(owner=2))
        assert db.num_terms == 1
        assert clone.num_terms == 2


class TestTransitPermits:
    def test_no_terms_means_no_transit(self):
        db = PolicyDatabase()
        assert not db.transit_permits(7, FlowSpec(1, 2), 1, 2)

    def test_first_matching_term_cited(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=7, sources=ADSet.of([99])))
        db.add_term(PolicyTerm(owner=7))
        term = db.permitting_term(7, FlowSpec(1, 2), 1, 2)
        assert term is not None and term.term_id == 1
        # A flow matching the first term cites it.
        term99 = db.permitting_term(7, FlowSpec(99, 2), 1, 2)
        assert term99 is not None and term99.term_id == 0

    def test_size_bytes_totals(self):
        db = PolicyDatabase([PolicyTerm(owner=1), PolicyTerm(owner=2)])
        assert db.size_bytes() == sum(t.size_bytes() for t in db.all_terms())
