"""Tests for the policy database."""

import pytest

from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.policy.uci import UCI


class TestTermManagement:
    def test_term_ids_assigned_per_owner(self):
        db = PolicyDatabase()
        t0 = db.add_term(PolicyTerm(owner=1))
        t1 = db.add_term(PolicyTerm(owner=1))
        t2 = db.add_term(PolicyTerm(owner=2))
        assert (t0.term_id, t1.term_id, t2.term_id) == (0, 1, 0)

    def test_lookup_by_citation(self):
        db = PolicyDatabase()
        stored = db.add_term(PolicyTerm(owner=3, sources=ADSet.of([1])))
        assert db.term(3, 0) == stored
        with pytest.raises(KeyError):
            db.term(3, 1)
        with pytest.raises(KeyError):
            db.term(4, 0)

    def test_version_bumps_on_mutation(self):
        db = PolicyDatabase()
        v0 = db.version
        db.add_term(PolicyTerm(owner=1))
        assert db.version == v0 + 1
        db.remove_terms(1)
        assert db.version == v0 + 2
        # Removing nothing does not bump.
        v = db.version
        db.remove_terms(99)
        assert db.version == v

    def test_owners_and_all_terms_ordering(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=5))
        db.add_term(PolicyTerm(owner=2))
        db.add_term(PolicyTerm(owner=5))
        assert db.owners() == [2, 5]
        assert [(t.owner, t.term_id) for t in db.all_terms()] == [
            (2, 0),
            (5, 0),
            (5, 1),
        ]
        assert db.num_terms == 3

    def test_init_from_iterable(self):
        db = PolicyDatabase([PolicyTerm(owner=1), PolicyTerm(owner=1)])
        assert db.num_terms == 2

    def test_copy_is_independent(self):
        db = PolicyDatabase([PolicyTerm(owner=1)])
        clone = db.copy()
        clone.add_term(PolicyTerm(owner=2))
        assert db.num_terms == 1
        assert clone.num_terms == 2


class TestTransitPermits:
    def test_no_terms_means_no_transit(self):
        db = PolicyDatabase()
        assert not db.transit_permits(7, FlowSpec(1, 2), 1, 2)

    def test_first_matching_term_cited(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=7, sources=ADSet.of([99])))
        db.add_term(PolicyTerm(owner=7))
        term = db.permitting_term(7, FlowSpec(1, 2), 1, 2)
        assert term is not None and term.term_id == 1
        # A flow matching the first term cites it.
        term99 = db.permitting_term(7, FlowSpec(99, 2), 1, 2)
        assert term99 is not None and term99.term_id == 0

    def test_size_bytes_totals(self):
        db = PolicyDatabase([PolicyTerm(owner=1), PolicyTerm(owner=2)])
        assert db.size_bytes() == sum(t.size_bytes() for t in db.all_terms())

    def test_running_totals_track_mutations(self):
        # num_terms and size_bytes are maintained incrementally (O(1)
        # reads for per-round metrics); they must agree with recomputation
        # through an arbitrary add/remove history.
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=1, sources=ADSet.of([2, 3])))
        db.add_term(PolicyTerm(owner=1))
        db.add_term(PolicyTerm(owner=2, dests=ADSet.excluding([9])))
        assert db.num_terms == 3
        assert db.size_bytes() == sum(t.size_bytes() for t in db.all_terms())
        db.remove_terms(1)
        assert db.num_terms == 1
        assert db.size_bytes() == sum(t.size_bytes() for t in db.all_terms())
        db.remove_terms(1)  # idempotent, totals untouched
        assert db.num_terms == 1
        db.remove_terms(2)
        assert db.num_terms == 0
        assert db.size_bytes() == 0


class TestIndexedEngine:
    def test_indexed_and_scan_agree_on_citation(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=7, sources=ADSet.of([99])))
        db.add_term(PolicyTerm(owner=7))
        flow = FlowSpec(99, 2)
        indexed = db.permitting_term(7, flow, 1, 2)
        reference = db.scan_permitting_term(7, flow, 1, 2)
        assert indexed is not None and indexed.term_id == reference.term_id == 0

    def test_decision_cache_hits_and_version_invalidation(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=7, sources=ADSet.of([1])))
        flow = FlowSpec(1, 2)
        assert db.transit_permits(7, flow, 1, 2)
        hits_before = db.cache_hits
        assert db.transit_permits(7, flow, 1, 2)
        assert db.cache_hits == hits_before + 1
        # A mutation bumps the version; the stale verdict must not survive.
        db.add_term(PolicyTerm(owner=7, sources=ADSet.of([5])))
        assert db.transit_permits(7, FlowSpec(5, 2), 1, 2)
        assert db.transit_permits(7, flow, 1, 2)

    def test_removal_invalidates_cached_permit(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=7))
        flow = FlowSpec(1, 2)
        assert db.transit_permits(7, flow, 1, 2)
        db.remove_terms(7)
        assert not db.transit_permits(7, flow, 1, 2)

    def test_use_index_toggle_preserves_answers(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=3, ucis=frozenset({UCI.RESEARCH})))
        db.add_term(PolicyTerm(owner=3, prev_ads=ADSet.of([1])))
        flow = FlowSpec(1, 2, uci=UCI.RESEARCH)
        indexed = db.permitting_term(3, flow, 1, 2)
        db.use_index = False
        scanned = db.permitting_term(3, flow, 1, 2)
        assert indexed.term_id == scanned.term_id

    def test_transit_charge_matches_cited_term(self):
        db = PolicyDatabase()
        db.add_term(PolicyTerm(owner=3, charge=2.5))
        assert db.transit_charge(3, FlowSpec(1, 2), 1, 2) == 2.5
        assert db.transit_charge(4, FlowSpec(1, 2), 1, 2) is None
