"""Tests for failure plans."""

import pytest

from repro.adgraph.ad import LinkKind
from repro.adgraph.failures import (
    FailurePlan,
    LinkFailure,
    random_failure_plan,
    safe_failure_candidates,
    stub_partition_plan,
)
from repro.adgraph.generator import TopologyConfig, generate_internet
from tests.helpers import line_graph, mk_graph


class TestFailurePlan:
    def test_events_must_be_time_ordered(self):
        with pytest.raises(ValueError):
            FailurePlan((LinkFailure(10, 1, 2), LinkFailure(5, 2, 3)))

    def test_iteration_and_len(self):
        plan = FailurePlan((LinkFailure(1, 1, 2), LinkFailure(2, 2, 3)))
        assert len(plan) == 2
        assert [e.time for e in plan] == [1, 2]


class TestSafeCandidates:
    def test_line_has_no_safe_candidates(self):
        g = line_graph(4)
        assert safe_failure_candidates(g) == []

    def test_cycle_links_are_safe(self):
        g = mk_graph(
            [(0, "Rt"), (1, "Rt"), (2, "Rt")], [(0, 1), (1, 2), (0, 2)]
        )
        assert len(safe_failure_candidates(g)) == 3

    def test_bridge_excluded_from_cycle_graph(self):
        g = mk_graph(
            [(0, "Rt"), (1, "Rt"), (2, "Rt"), (3, "Cs")],
            [(0, 1), (1, 2), (0, 2), (2, 3)],
        )
        safe = safe_failure_candidates(g)
        assert (2, 3) not in safe
        assert len(safe) == 3


class TestRandomPlan:
    def test_failing_planned_links_keeps_connectivity(self):
        g = generate_internet(TopologyConfig(seed=1, lateral_prob=0.6))
        plan = random_failure_plan(g, count=3, seed=2)
        for ev in plan:
            g.set_link_status(ev.a, ev.b, ev.up)
            assert g.is_connected()

    def test_spacing_and_repair(self):
        g = generate_internet(TopologyConfig(seed=1, lateral_prob=0.6))
        plan = random_failure_plan(
            g, count=2, start_time=100, spacing=50, repair=True, seed=0
        )
        times = [e.time for e in plan]
        assert times == [100, 125, 150, 175]
        assert [e.up for e in plan] == [False, True, False, True]

    def test_kind_filter(self):
        g = generate_internet(TopologyConfig(seed=3, lateral_prob=0.8))
        plan = random_failure_plan(g, count=1, kinds=[LinkKind.LATERAL], seed=1)
        ev = list(plan)[0]
        assert g.link(ev.a, ev.b).kind is LinkKind.LATERAL

    def test_raises_when_not_enough_candidates(self):
        g = line_graph(4)
        with pytest.raises(ValueError):
            random_failure_plan(g, count=1)

    def test_deterministic(self):
        g = generate_internet(TopologyConfig(seed=1, lateral_prob=0.6))
        p1 = random_failure_plan(g, count=3, seed=9)
        p2 = random_failure_plan(g, count=3, seed=9)
        assert list(p1) == list(p2)


class TestAccumulatedFailures:
    def test_candidacy_recomputed_against_failed_topology(self):
        # A 4-cycle: every link is individually safe, but failing any one
        # turns the rest into a line of bridges.  Without repairs, a
        # second failure is therefore infeasible -- the old intact-graph
        # sampling would have disconnected the internet instead.
        g = mk_graph(
            [(0, "Rt"), (1, "Rt"), (2, "Rt"), (3, "Rt")],
            [(0, 1), (1, 2), (2, 3), (0, 3)],
        )
        assert len(safe_failure_candidates(g)) == 4
        with pytest.raises(ValueError, match="no safe candidate links left"):
            random_failure_plan(g, count=2, repair=False)
        # With repairs each failure is judged in isolation: fine.
        plan = random_failure_plan(g, count=2, repair=True, seed=0)
        assert len(plan) == 4

    def test_accumulated_failures_never_partition(self):
        for seed in range(5):
            g = generate_internet(
                TopologyConfig(seed=seed, lateral_prob=0.7, bypass_prob=0.3)
            )
            plan = random_failure_plan(g, count=4, repair=False, seed=seed)
            scratch = g.copy()
            for ev in plan:
                scratch.set_link_status(ev.a, ev.b, ev.up)
                assert scratch.is_connected()

    def test_input_graph_is_not_mutated(self):
        g = generate_internet(TopologyConfig(seed=1, lateral_prob=0.6))
        random_failure_plan(g, count=3, repair=False, seed=2)
        assert all(ln.up for ln in g.links())


class TestStubPartitionPlan:
    def test_fail_and_repair_per_stub(self):
        g = generate_internet(TopologyConfig(seed=1, lateral_prob=0.6))
        plan = stub_partition_plan(g, count=2)
        events = list(plan)
        assert len(events) == 4
        assert [e.up for e in events] == [False, True, False, True]

    def test_raises_when_stubs_run_out(self):
        # All-transit ring: no singly-homed stub ADs at all.
        g = mk_graph(
            [(0, "Rt"), (1, "Rt"), (2, "Rt")], [(0, 1), (1, 2), (0, 2)]
        )
        with pytest.raises(ValueError, match="singly-homed stub"):
            stub_partition_plan(g, count=1)
